/**
 * @file
 * Whole-switch hot-path benchmark: slots per second through the full
 * acceptCell/runSlot loop on the Figure 3 workload (uniform Bernoulli
 * arrivals, 16x16, load 0.9 by default).
 *
 * Where bench_match_speed isolates the matcher, this measures the path a
 * production switch would run every cell time: traffic injection, input
 * buffering, request bookkeeping, matching, and crossbar forwarding. The
 * committed BENCH_hotpath.json records the before/after trajectory of
 * the zero-allocation + word-parallel hot-path work (see EXPERIMENTS.md
 * "Performance methodology").
 *
 * Emits an an2.sweep.v1 JSON document with timing aggregates per
 * architecture; unlike the simulation sweeps, the numbers are wall-clock
 * rates and therefore machine-dependent by design.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "an2/base/stats.h"
#include "an2/harness/aggregate.h"
#include "an2/harness/json_writer.h"
#include "an2/matching/islip.h"
#include "an2/matching/pim_fast.h"
#include "an2/matching/serial_greedy.h"
#include "an2/obs/recorder.h"
#include "an2/sim/cioq_switch.h"
#include "an2/sim/fifo_switch.h"
#include "an2/sim/oq_switch.h"
#include "an2/sim/simulator.h"
#include "bench_common.h"

namespace {

using namespace an2;

struct Cli
{
    std::string json_path;
    long long slots = 200'000;
    long long warmup = 20'000;
    int reps = 3;
    int size = 16;
    double load = 0.9;
    uint64_t seed = 2026;
    std::string arch_filter;  ///< substring filter; empty = all
    bool help = false;
};

void
printHelp(const char* prog)
{
    std::printf("usage: %s [options]\n", prog);
    std::printf("  --json PATH    write an an2.sweep.v1 timing document\n");
    std::printf("  --slots S      measured slots per repetition "
                "(default 200000)\n");
    std::printf("  --warmup W     unmeasured warmup slots (default 20000)\n");
    std::printf("  --reps R       repetitions per architecture "
                "(default 3)\n");
    std::printf("  --size N       switch size (default 16)\n");
    std::printf("  --load L       offered load (default 0.9)\n");
    std::printf("  --seed X       base seed (default 2026)\n");
    std::printf("  --arch STR     only architectures whose name contains "
                "STR\n");
    std::printf("  --help         this message\n");
}

bool
parseCli(int argc, char** argv, Cli& cli, std::string& err)
{
    auto need = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            err = std::string(argv[i]) + " needs an argument";
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char* a = argv[i];
        const char* v = nullptr;
        if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) {
            cli.help = true;
        } else if (!std::strcmp(a, "--json")) {
            if (!(v = need(i)))
                return false;
            cli.json_path = v;
        } else if (!std::strcmp(a, "--slots")) {
            if (!(v = need(i)))
                return false;
            cli.slots = std::atoll(v);
            if (cli.slots <= 0) {
                err = "--slots must be positive";
                return false;
            }
        } else if (!std::strcmp(a, "--warmup")) {
            if (!(v = need(i)))
                return false;
            cli.warmup = std::atoll(v);
            if (cli.warmup < 0) {
                err = "--warmup must be non-negative";
                return false;
            }
        } else if (!std::strcmp(a, "--reps")) {
            if (!(v = need(i)))
                return false;
            cli.reps = std::atoi(v);
            if (cli.reps <= 0) {
                err = "--reps must be positive";
                return false;
            }
        } else if (!std::strcmp(a, "--size")) {
            if (!(v = need(i)))
                return false;
            cli.size = std::atoi(v);
            if (cli.size <= 0) {
                err = "--size must be positive";
                return false;
            }
        } else if (!std::strcmp(a, "--load")) {
            if (!(v = need(i)))
                return false;
            cli.load = std::atof(v);
            if (cli.load <= 0.0 || cli.load > 1.0) {
                err = "--load must be in (0, 1]";
                return false;
            }
        } else if (!std::strcmp(a, "--seed")) {
            if (!(v = need(i)))
                return false;
            cli.seed = std::strtoull(v, nullptr, 0);
        } else if (!std::strcmp(a, "--arch")) {
            if (!(v = need(i)))
                return false;
            cli.arch_filter = v;
        } else {
            err = std::string("unknown option: ") + a;
            return false;
        }
    }
    return true;
}

struct ArchUnderTest
{
    std::string name;
    std::function<std::unique_ptr<SwitchModel>(int n, uint64_t seed)> make;

    /** 0 = probes unattached (the production configuration), 1 = a
        Recorder attached with counters/histograms only, 2 = counters
        plus a 64Ki-event trace ring, 3 = counters plus latency
        histograms and a metrics time series sampled every 1000 slots. */
    int obs_mode = 0;
};

std::vector<ArchUnderTest>
archsUnderTest()
{
    using bench::makePim;
    std::vector<ArchUnderTest> archs;
    archs.push_back({"PIM(4)", [](int n, uint64_t seed) {
                         return std::make_unique<InputQueuedSwitch>(
                             IqSwitchConfig{.n = n}, makePim(4, seed));
                     }});
    // The same switch with the obs layer progressively engaged: the
    // plain "PIM(4)" row above is the probes-compiled-in-but-unattached
    // configuration the <3% hot-path budget applies to; these two price
    // the attached tiers (see EXPERIMENTS.md "Observability").
    archs.push_back({"PIM(4)+obs-counters",
                     [](int n, uint64_t seed) {
                         return std::make_unique<InputQueuedSwitch>(
                             IqSwitchConfig{.n = n}, makePim(4, seed));
                     },
                     /*obs_mode=*/1});
    archs.push_back({"PIM(4)+obs-trace",
                     [](int n, uint64_t seed) {
                         return std::make_unique<InputQueuedSwitch>(
                             IqSwitchConfig{.n = n}, makePim(4, seed));
                     },
                     /*obs_mode=*/2});
    archs.push_back({"PIM(4)+obs-latency",
                     [](int n, uint64_t seed) {
                         return std::make_unique<InputQueuedSwitch>(
                             IqSwitchConfig{.n = n}, makePim(4, seed));
                     },
                     /*obs_mode=*/3});
    archs.push_back({"PIM(4)-pipelined", [](int n, uint64_t seed) {
                         return std::make_unique<InputQueuedSwitch>(
                             IqSwitchConfig{.n = n, .pipelined = true},
                             makePim(4, seed));
                     }});
    archs.push_back({"iSLIP(4)", [](int n, uint64_t) {
                         return std::make_unique<InputQueuedSwitch>(
                             IqSwitchConfig{.n = n},
                             std::make_unique<IslipMatcher>(4));
                     }});
    archs.push_back({"Greedy", [](int n, uint64_t seed) {
                         return std::make_unique<InputQueuedSwitch>(
                             IqSwitchConfig{.n = n},
                             std::make_unique<SerialGreedyMatcher>(true,
                                                                   seed));
                     }});
    archs.push_back({"FastPIM(4)", [](int n, uint64_t seed) {
                         return std::make_unique<InputQueuedSwitch>(
                             IqSwitchConfig{.n = n},
                             std::make_unique<FastPimMatcher>(4, seed));
                     }});
    // Warm-start (temporal locality) variants: WarmStart::On seeds each
    // slot's matching from the previous slot's surviving edges and
    // repairs only the changed ports (see matcher.h). The obs-counters
    // row additionally records the reuse/repair counters into the JSON.
    archs.push_back({"iSLIP(4)+warm", [](int n, uint64_t) {
                         return std::make_unique<InputQueuedSwitch>(
                             IqSwitchConfig{.n = n},
                             std::make_unique<IslipMatcher>(
                                 4, MatcherBackend::Auto, WarmStart::On));
                     }});
    archs.push_back({"Greedy+warm", [](int n, uint64_t seed) {
                         return std::make_unique<InputQueuedSwitch>(
                             IqSwitchConfig{.n = n},
                             std::make_unique<SerialGreedyMatcher>(
                                 true, seed, MatcherBackend::Auto,
                                 WarmStart::On));
                     }});
    archs.push_back({"FastPIM(4)+warm", [](int n, uint64_t seed) {
                         return std::make_unique<InputQueuedSwitch>(
                             IqSwitchConfig{.n = n},
                             std::make_unique<FastPimMatcher>(
                                 4, seed, WarmStart::On));
                     }});
    archs.push_back({"iSLIP(4)+warm+obs-counters",
                     [](int n, uint64_t) {
                         return std::make_unique<InputQueuedSwitch>(
                             IqSwitchConfig{.n = n},
                             std::make_unique<IslipMatcher>(
                                 4, MatcherBackend::Auto, WarmStart::On));
                     },
                     /*obs_mode=*/1});
    archs.push_back({"OutputQueued", [](int n, uint64_t) {
                         return std::make_unique<OutputQueuedSwitch>(n);
                     }});
    // CIOQ hot path: S greedy matching phases per slot plus the
    // per-class output service stage. check_bench skips rows with no
    // committed baseline, so adding this row leaves BENCH_hotpath.json
    // comparisons untouched.
    archs.push_back({"CIOQ(S=2,strict)", [](int n, uint64_t seed) {
                         CioqSwitchConfig cfg;
                         cfg.n = n;
                         cfg.speedup = 2;
                         return std::make_unique<CioqSwitch>(
                             cfg, std::make_unique<SerialGreedyMatcher>(
                                      true, seed));
                     }});
    return archs;
}

struct ArchTiming
{
    std::string name;
    RunningStats slots_per_sec;
    RunningStats cells_per_sec;
    int64_t delivered = 0;

    /** Warm-start counters over the measured slots (obs rows only). */
    bool has_obs_counters = false;
    int64_t match_edges_reused = 0;
    int64_t match_edges_repaired = 0;
    int64_t warm_start_full_reuses = 0;
    int64_t trace_events_dropped = 0;
};

/** Feeds the switch's batched runSlots() loop: arrivals straight from
    the traffic generator, departures tallied. */
class BenchDriver final : public SlotDriver
{
  public:
    explicit BenchDriver(TrafficGenerator& traffic) : traffic_(traffic) {}

    const std::vector<Cell>& beginSlot(SlotTime slot) override
    {
        arrivals_.clear();
        traffic_.generate(slot, arrivals_);
        return arrivals_;
    }

    void endSlot(SlotTime slot, const std::vector<Cell>& departed) override
    {
        delivered_ += static_cast<int64_t>(departed.size());
        // Same delivery probe SimDriver fires in production; one
        // load+branch per slot when nothing is attached.
        if (obs::Recorder* rec = obs::current())
            for (const Cell& c : departed)
                rec->cellDelivered(c, slot);
    }

    int64_t delivered() const { return delivered_; }
    void resetDelivered() { delivered_ = 0; }

  private:
    TrafficGenerator& traffic_;
    std::vector<Cell> arrivals_;
    int64_t delivered_ = 0;
};

ArchTiming
timeArch(const ArchUnderTest& arch, const Cli& cli)
{
    ArchTiming timing;
    timing.name = arch.name;
    timing.has_obs_counters = arch.obs_mode > 0;
    for (int rep = 0; rep < cli.reps; ++rep) {
        std::unique_ptr<obs::Recorder> rec;
        if (arch.obs_mode > 0) {
            obs::RecorderConfig rc;
            rc.ports = cli.size;
            if (arch.obs_mode == 2)
                rc.trace_capacity = 1u << 16;
            if (arch.obs_mode == 3) {
                rc.track_latency = true;
                rc.metrics_every = 1000;
            }
            rec = std::make_unique<obs::Recorder>(rc);
            obs::attach(rec.get());
        }
        auto sw = arch.make(cli.size,
                            cli.seed + static_cast<uint64_t>(rep) * 7919);
        UniformTraffic traffic(cli.size, cli.load,
                               cli.seed + 1 +
                                   static_cast<uint64_t>(rep) * 104729);
        BenchDriver driver(traffic);
        sw->runSlots(0, cli.warmup, driver);
        driver.resetDelivered();
        const int64_t reused0 =
            rec ? rec->counter(obs::Counter::MatchEdgesReused) : 0;
        const int64_t repaired0 =
            rec ? rec->counter(obs::Counter::MatchEdgesRepaired) : 0;
        const int64_t full0 =
            rec ? rec->counter(obs::Counter::WarmStartFullReuses) : 0;
        const int64_t dropped0 =
            rec ? rec->counter(obs::Counter::TraceEventsDropped) : 0;
        auto t0 = std::chrono::steady_clock::now();
        sw->runSlots(cli.warmup, cli.slots, driver);
        auto t1 = std::chrono::steady_clock::now();
        if (rec) {
            timing.match_edges_reused +=
                rec->counter(obs::Counter::MatchEdgesReused) - reused0;
            timing.match_edges_repaired +=
                rec->counter(obs::Counter::MatchEdgesRepaired) - repaired0;
            timing.warm_start_full_reuses +=
                rec->counter(obs::Counter::WarmStartFullReuses) - full0;
            timing.trace_events_dropped +=
                rec->counter(obs::Counter::TraceEventsDropped) - dropped0;
            obs::detach();
        }
        const int64_t delivered = driver.delivered();
        double secs = std::chrono::duration<double>(t1 - t0).count();
        timing.slots_per_sec.add(static_cast<double>(cli.slots) / secs);
        timing.cells_per_sec.add(static_cast<double>(delivered) / secs);
        timing.delivered += delivered;
    }
    return timing;
}

void
writeAggregate(harness::JsonWriter& w, const char* key,
               const RunningStats& s)
{
    harness::Aggregate a = harness::summarize(s);
    w.key(key).beginObject();
    w.key("mean").value(a.mean);
    w.key("stddev").value(a.stddev);
    w.key("ci95").value(a.ci95);
    w.key("min").value(a.min);
    w.key("max").value(a.max);
    w.endObject();
}

std::string
timingsToJson(const Cli& cli, const std::vector<ArchTiming>& timings)
{
    harness::JsonWriter w;
    w.beginObject();
    w.key("meta").beginObject();
    w.key("schema").value("an2.sweep.v1");
    w.key("experiment").value("slot_loop");
    w.key("description")
        .value("whole-switch slots/sec on the Figure 3 workload "
               "(wall-clock rates; machine-dependent)");
    w.key("workload").value("uniform");
    w.key("slots").value(static_cast<int64_t>(cli.slots));
    w.key("warmup").value(static_cast<int64_t>(cli.warmup));
    w.key("replicates").value(cli.reps);
    w.key("base_seed").value(std::to_string(cli.seed));
    w.endObject();
    w.key("axes").beginObject();
    w.key("arch").beginArray();
    for (const ArchTiming& t : timings)
        w.value(t.name);
    w.endArray();
    w.key("size").beginArray().value(cli.size).endArray();
    w.key("load").beginArray().value(cli.load).endArray();
    w.endObject();
    w.key("cells").beginArray();
    for (const ArchTiming& t : timings) {
        w.beginObject();
        w.key("arch").value(t.name);
        w.key("size").value(cli.size);
        w.key("load").value(cli.load);
        w.key("replicates").value(cli.reps);
        writeAggregate(w, "slots_per_sec", t.slots_per_sec);
        writeAggregate(w, "cells_per_sec", t.cells_per_sec);
        w.key("delivered").value(t.delivered);
        if (t.has_obs_counters) {
            w.key("match_edges_reused").value(t.match_edges_reused);
            w.key("match_edges_repaired").value(t.match_edges_repaired);
            w.key("warm_start_full_reuses").value(t.warm_start_full_reuses);
            w.key("trace_events_dropped").value(t.trace_events_dropped);
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

}  // namespace

int
main(int argc, char** argv)
{
    Cli cli;
    std::string err;
    if (!parseCli(argc, argv, cli, err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        printHelp(argv[0]);
        return 2;
    }
    if (cli.help) {
        printHelp(argv[0]);
        return 0;
    }

    const bool table = cli.json_path != "-";
    if (table) {
        bench::banner("Hot path -- whole-switch slots/sec, Figure 3 "
                      "workload",
                      "an2sim performance methodology (EXPERIMENTS.md)");
        std::printf("  %dx%d switch, load %.2f, %lld measured slots, "
                    "%d rep(s)\n\n",
                    cli.size, cli.size, cli.load, cli.slots, cli.reps);
        std::printf("  %-18s  %12s  %12s  %10s\n", "arch", "slots/s",
                    "cells/s", "stddev");
    }

    std::vector<ArchTiming> timings;
    for (const ArchUnderTest& arch : archsUnderTest()) {
        if (!cli.arch_filter.empty() &&
            arch.name.find(cli.arch_filter) == std::string::npos)
            continue;
        ArchTiming t = timeArch(arch, cli);
        if (table)
            std::printf("  %-18s  %12.0f  %12.0f  %10.0f\n",
                        t.name.c_str(), t.slots_per_sec.mean(),
                        t.cells_per_sec.mean(), t.slots_per_sec.stddev());
        timings.push_back(std::move(t));
    }

    if (!cli.json_path.empty()) {
        std::string doc = timingsToJson(cli, timings);
        if (cli.json_path == "-") {
            std::fwrite(doc.data(), 1, doc.size(), stdout);
        } else {
            std::FILE* f = std::fopen(cli.json_path.c_str(), "wb");
            if (!f) {
                std::fprintf(stderr, "error: cannot open %s\n",
                             cli.json_path.c_str());
                return 1;
            }
            size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
            if (n != doc.size() || std::fclose(f) != 0) {
                std::fprintf(stderr, "error: short write to %s\n",
                             cli.json_path.c_str());
                return 1;
            }
            std::fprintf(stderr, "  wrote %s (%zu bytes)\n",
                         cli.json_path.c_str(), doc.size());
        }
    }
    return 0;
}
