/**
 * @file
 * Section 2.2 substrate check: internal blocking in self-routing
 * fabrics. A plain banyan loses cells to interior 2x2 conflicts even
 * when every cell has a distinct output; putting a Batcher sorter in
 * front (Starlite/Sunshine) makes the same traffic conflict-free. This
 * is the property the AN2 scheduler assumes of its fabric — the paper
 * satisfies it with a crossbar; this bench validates the alternative.
 */
#include <cstdio>
#include <numeric>
#include <vector>

#include "an2/base/rng.h"
#include "an2/fabric/batcher_banyan.h"
#include "bench_common.h"

namespace {

using namespace an2;

void
measure(int n)
{
    BanyanNetwork banyan(n);
    BatcherBanyanFabric bb(n);
    Xoshiro256 rng(101);
    std::vector<PortId> perm(static_cast<size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);

    constexpr int kTrials = 4000;
    int blocked_trials = 0;
    int64_t lost_cells = 0;
    int64_t bb_lost = 0;
    for (int t = 0; t < kTrials; ++t) {
        rng.shuffle(perm);
        std::vector<FabricCell> cells;
        for (PortId i = 0; i < n; ++i)
            cells.push_back({i, perm[static_cast<size_t>(i)], i});
        FabricResult r = banyan.route(cells);
        if (!r.blocked.empty())
            ++blocked_trials;
        lost_cells += static_cast<int64_t>(r.blocked.size());
        bb_lost += static_cast<int64_t>(bb.route(cells).blocked.size());
    }
    std::printf("  %4d   %14.1f%%  %13.2f   %16lld\n", n,
                100.0 * blocked_trials / kTrials,
                static_cast<double>(lost_cells) / kTrials,
                static_cast<long long>(bb_lost));
}

}  // namespace

int
main()
{
    an2::bench::banner(
        "Section 2.2 -- internal blocking: banyan vs Batcher-banyan",
        "Anderson et al. 1992, Section 2.2 / Huang & Knauer 1984");
    std::printf("  Random full permutations (distinct outputs), 4000 trials"
                " per size:\n\n");
    std::printf("  %4s   %15s  %13s   %16s\n", "N", "banyan blocked",
                "cells lost", "batcher-banyan lost");
    for (int n : {4, 8, 16, 32, 64})
        measure(n);
    std::printf("\n  A bare banyan drops cells on almost every permutation"
                " as N grows; the\n  Batcher front-end (or AN2's crossbar)"
                " eliminates internal blocking, which\n  is what lets the"
                " scheduler treat the fabric as ideal.\n");
    return 0;
}
