// Unit tests for the network node internals: Controller frame pacing and
// padding, NetSwitch routing validation (an2/network/*). The multi-node
// behaviours live in network_test.cc; these drive the nodes directly.
#include <gtest/gtest.h>

#include <memory>

#include "an2/matching/pim.h"
#include "an2/network/controller.h"
#include "an2/network/net_switch.h"

namespace an2 {
namespace {

constexpr PicoTime kSlotPs = 1000;

std::unique_ptr<Matcher>
pim(uint64_t seed)
{
    return std::make_unique<PimMatcher>(
        PimConfig{.iterations = 4, .seed = seed});
}

// ----------------------------------------------------------- Controller

TEST(ControllerUnitTest, CbrPacedExactlyPerFrame)
{
    // Frame of 10 slots (8 schedulable + 2 padding); reservation of 3.
    Controller ctl(0, LocalClock(kSlotPs, 0.0), 10, 8, 1);
    NetLink out(0);
    ctl.setOutLink(&out);
    ctl.addCbrSource(42, 3);
    for (int tick = 0; tick < 50; ++tick)
        ctl.tick();
    // 5 full frames: 15 cells, delivered immediately (zero latency link).
    auto cells = out.deliverUpTo(kSlotPs * 1000);
    ASSERT_EQ(cells.size(), 15u);
    // Cells occupy the first 3 slots of each frame, in seq order.
    for (size_t k = 0; k < cells.size(); ++k) {
        EXPECT_EQ(cells[k].seq, static_cast<int64_t>(k));
        EXPECT_EQ(cells[k].inject_slot % 10, static_cast<SlotTime>(k % 3));
        EXPECT_EQ(cells[k].cls, TrafficClass::CBR);
    }
}

TEST(ControllerUnitTest, PaddingSlotsNeverCarryCells)
{
    Controller ctl(0, LocalClock(kSlotPs, 0.0), 10, 8, 2);
    NetLink out(0);
    ctl.setOutLink(&out);
    ctl.addVbrSource(7, 1.0);  // saturating datagram source
    for (int tick = 0; tick < 100; ++tick)
        ctl.tick();
    auto cells = out.deliverUpTo(kSlotPs * 1000);
    EXPECT_EQ(cells.size(), 80u);  // 8 of every 10 slots
    for (const Cell& c : cells)
        EXPECT_LT(c.inject_slot % 10, 8);
}

TEST(ControllerUnitTest, CbrOverCommitRejected)
{
    Controller ctl(0, LocalClock(kSlotPs, 0.0), 10, 8, 3);
    ctl.addCbrSource(1, 5);
    EXPECT_THROW(ctl.addCbrSource(2, 4), UsageError);  // 9 > 8
    EXPECT_NO_THROW(ctl.addCbrSource(3, 3));
}

TEST(ControllerUnitTest, VbrRatesSplitTheFreeSlots)
{
    Controller ctl(0, LocalClock(kSlotPs, 0.0), 10, 10, 4);
    NetLink out(0);
    ctl.setOutLink(&out);
    ctl.addVbrSource(1, 0.6);
    ctl.addVbrSource(2, 0.2);
    EXPECT_THROW(ctl.addVbrSource(3, 0.3), UsageError);  // sum > 1
    for (int tick = 0; tick < 20'000; ++tick)
        ctl.tick();
    auto cells = out.deliverUpTo(kSlotPs * 1'000'000);
    int64_t f1 = 0;
    int64_t f2 = 0;
    for (const Cell& c : cells)
        (c.flow == 1 ? f1 : f2)++;
    EXPECT_NEAR(static_cast<double>(f1) / 20'000, 0.6, 0.02);
    EXPECT_NEAR(static_cast<double>(f2) / 20'000, 0.2, 0.02);
}

TEST(ControllerUnitTest, SinkStatsForUnknownFlowRejected)
{
    Controller ctl(0, LocalClock(kSlotPs, 0.0), 10, 8, 5);
    EXPECT_THROW(ctl.deliveryStats(9), UsageError);
    EXPECT_THROW(ctl.injectedCells(9), UsageError);
    EXPECT_THROW(ctl.policedDrops(9), UsageError);
}

TEST(ControllerUnitTest, InvalidConstruction)
{
    EXPECT_THROW(Controller(0, LocalClock(kSlotPs, 0.0), 0, 1, 1),
                 UsageError);
    EXPECT_THROW(Controller(0, LocalClock(kSlotPs, 0.0), 10, 11, 1),
                 UsageError);
}

// ------------------------------------------------------------ NetSwitch

TEST(NetSwitchUnitTest, UnroutedFlowCellRejected)
{
    NetSwitch sw(0, LocalClock(kSlotPs, 0.0), 2, 10, pim(1));
    NetLink in(0);
    NetLink out(0);
    sw.setInLink(0, &in);
    sw.setOutLink(1, &out);
    Cell c;
    c.flow = 99;  // never routed
    c.cls = TrafficClass::VBR;
    in.send(c, 0);
    EXPECT_THROW(sw.tick(), UsageError);
}

TEST(NetSwitchUnitTest, DuplicateRouteRejected)
{
    NetSwitch sw(0, LocalClock(kSlotPs, 0.0), 2, 10, pim(2));
    EXPECT_TRUE(sw.addRoute(5, 0, 1, TrafficClass::VBR, 0));
    EXPECT_THROW(sw.addRoute(5, 0, 1, TrafficClass::VBR, 0), UsageError);
}

TEST(NetSwitchUnitTest, CbrRouteFailsWhenScheduleFull)
{
    NetSwitch sw(0, LocalClock(kSlotPs, 0.0), 2, 10, pim(3));
    EXPECT_TRUE(sw.addRoute(1, 0, 1, TrafficClass::CBR, 10));
    EXPECT_FALSE(sw.addRoute(2, 0, 1, TrafficClass::CBR, 1));
}

TEST(NetSwitchUnitTest, ForwardsVbrBetweenLinks)
{
    NetSwitch sw(0, LocalClock(kSlotPs, 0.0), 2, 10, pim(4));
    NetLink in(0);
    NetLink out(0);
    sw.setInLink(0, &in);
    sw.setOutLink(1, &out);
    ASSERT_TRUE(sw.addRoute(5, 0, 1, TrafficClass::VBR, 0));
    Cell c;
    c.flow = 5;
    c.cls = TrafficClass::VBR;
    c.seq = 3;
    in.send(c, 0);
    sw.tick();
    auto delivered = out.deliverUpTo(kSlotPs * 100);
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0].seq, 3);
    EXPECT_EQ(delivered[0].hops, 1);
    EXPECT_EQ(sw.vbrForwarded(), 1);
}

TEST(NetSwitchUnitTest, PortWiringValidated)
{
    NetSwitch sw(0, LocalClock(kSlotPs, 0.0), 2, 10, pim(5));
    NetLink link(0);
    sw.setInLink(0, &link);
    EXPECT_THROW(sw.setInLink(0, &link), UsageError);  // already wired
    EXPECT_THROW(sw.setOutLink(5, &link), UsageError);  // out of range
}

}  // namespace
}  // namespace an2
