// Tests for the perfect output-queued reference switch
// (an2/sim/oq_switch.h).
#include "an2/sim/oq_switch.h"

#include <gtest/gtest.h>

#include "an2/sim/simulator.h"
#include "an2/sim/traffic.h"

namespace an2 {
namespace {

TEST(OqSwitchTest, AllSimultaneousArrivalsAccepted)
{
    // N cells for one output in one slot: no loss, drained 1/slot.
    OutputQueuedSwitch sw(4);
    for (PortId i = 0; i < 4; ++i) {
        Cell c;
        c.flow = i;
        c.input = i;
        c.output = 2;
        sw.acceptCell(c);
    }
    EXPECT_EQ(sw.bufferedCells(), 4);
    for (int slot = 0; slot < 4; ++slot) {
        auto departed = sw.runSlot(slot);
        ASSERT_EQ(departed.size(), 1u);
        EXPECT_EQ(departed[0].output, 2);
    }
    EXPECT_EQ(sw.bufferedCells(), 0);
}

TEST(OqSwitchTest, WorkConservingAcrossOutputs)
{
    OutputQueuedSwitch sw(4);
    for (PortId j = 0; j < 4; ++j) {
        Cell c;
        c.flow = j;
        c.input = 0;  // all from one input: impossible for IQ, fine here
        c.output = j;
        sw.acceptCell(c);
    }
    EXPECT_EQ(sw.runSlot(0).size(), 4u);
}

TEST(OqSwitchTest, FullLoadSustainsFullThroughput)
{
    OutputQueuedSwitch sw(16);
    UniformTraffic traffic(16, 1.0, 3);
    SimConfig cfg;
    cfg.slots = 20'000;
    cfg.warmup = 4'000;
    SimResult res = runSimulation(sw, traffic, cfg);
    EXPECT_GT(res.throughput, 0.97);
}

TEST(OqSwitchTest, DelayLowerThanAnyInputQueuedScheme)
{
    // M/D/1-like behaviour: at 50% uniform load the mean delay is well
    // under one slot... (cells delayed only by same-output contention).
    OutputQueuedSwitch sw(16);
    UniformTraffic traffic(16, 0.5, 5);
    SimConfig cfg;
    cfg.slots = 20'000;
    cfg.warmup = 4'000;
    SimResult res = runSimulation(sw, traffic, cfg);
    EXPECT_LT(res.mean_delay, 1.0);
}

TEST(OqSwitchTest, FifoPerOutput)
{
    OutputQueuedSwitch sw(2);
    Cell first;
    first.flow = 0;
    first.input = 0;
    first.output = 1;
    first.seq = 1;
    Cell second;
    second.flow = 0;
    second.input = 0;
    second.output = 1;
    second.seq = 2;
    sw.acceptCell(first);
    sw.acceptCell(second);
    EXPECT_EQ(sw.runSlot(0)[0].seq, 1);
    EXPECT_EQ(sw.runSlot(1)[0].seq, 2);
}

TEST(OqSwitchTest, InvalidOutputRejected)
{
    OutputQueuedSwitch sw(2);
    Cell bad;
    bad.output = 7;
    EXPECT_THROW(sw.acceptCell(bad), UsageError);
}

}  // namespace
}  // namespace an2
