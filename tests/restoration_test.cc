// CBR path restoration (an2/fault/restoration.h): revoke / re-route /
// re-admit with seeded retry+backoff. Covers the terminal-state machine
// (Restored / Degraded / Abandoned), the no-restorer downstream-release
// fix, reservation/dead-element consistency under chaos churn, engine
// byte-identity with restoration armed, and the ParallelNet watchdog.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "an2/base/error.h"
#include "an2/fault/chaos.h"
#include "an2/fault/fault_plan.h"
#include "an2/fault/restoration.h"
#include "an2/matching/pim.h"
#include "an2/topo/lan.h"
#include "an2/topo/net_metrics.h"
#include "an2/topo/net_sweep.h"
#include "an2/topo/parallel_net.h"
#include "an2/topo/topology.h"

namespace an2 {
namespace {

using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultPlan;
using fault::RestorePolicy;
using fault::RestoreState;

topo::LanConfig
lanConfig(uint64_t seed = 1)
{
    topo::LanConfig config;
    config.seed = seed;
    config.matcher = [](int /*n_ports*/, uint64_t s) {
        PimConfig cfg;
        cfg.iterations = 2;
        cfg.seed = s;
        return std::make_unique<PimMatcher>(cfg);
    };
    return config;
}

/** Fast deterministic policy for short test horizons. */
RestorePolicy
fastPolicy(int budget = 8)
{
    RestorePolicy policy;
    policy.retry_budget = budget;
    policy.base_backoff_slots = 4;
    policy.max_backoff_slots = 64;
    policy.jitter_slots = 0;
    policy.seed = 99;
    return policy;
}

FaultPlan
linkDownAt(int link, SlotTime slot)
{
    FaultPlan plan;
    plan.events.push_back(FaultEvent{slot, FaultKind::LinkDown, link});
    return plan;
}

/** First host attached to switch `sw`, or -1. */
NodeId
hostAt(const topo::Topology& topo, NodeId sw, int skip = 0)
{
    for (NodeId h : topo.hosts())
        if (topo.hostSwitch(h) == sw && skip-- == 0)
            return h;
    return -1;
}

// ---------------------------------------------------------------------------
// Restored on a multipath topology

TEST(RestorationTest, FlowRestoredAroundDeadFatTreeLink)
{
    topo::Topology topo = topo::Topology::fatTree(4, 2);
    topo::Lan lan(topo, lanConfig());

    // One CBR flow between different pods: host -> edge -> agg -> core
    // -> agg -> edge -> host, with ECMP alternatives at every trunk tier.
    const NodeId src = topo.hosts().front();
    const NodeId dst = topo.hosts().back();
    const FlowId flow = lan.addCbrFlow(src, dst, 2);
    ASSERT_NE(flow, kNoFlow);
    const std::vector<NodeId> path0 = lan.flowPath(flow);
    ASSERT_EQ(path0.size(), 7u);

    lan.enableRestoration(fastPolicy());
    // Kill the edge->agg trunk the flow rides (the second path link).
    const int dead = lan.pathLinks(path0)[1];
    lan.scheduleFaults(linkDownAt(dead, 150));
    lan.runFrames(10);

    const fault::PathRestorer* pr = lan.restorer();
    ASSERT_NE(pr, nullptr);
    ASSERT_TRUE(pr->tracked(flow));
    EXPECT_EQ(pr->state(flow), RestoreState::Restored);
    EXPECT_EQ(pr->pendingCount(), 0);
    EXPECT_EQ(pr->stats().restored, 1);
    EXPECT_GE(pr->stats().latency_slots.count(), 1);

    // Full rate re-admitted, on a live path that avoids the dead link.
    EXPECT_EQ(lan.flowInfo(flow).cbr_admitted, 2);
    const std::vector<LinkId> links = lan.pathLinks(lan.flowPath(flow));
    EXPECT_EQ(std::find(links.begin(), links.end(), dead), links.end());
    for (LinkId l : links)
        EXPECT_TRUE(lan.net().linkAt(l).isUp());

    const topo::LanStats stats = lan.stats();
    EXPECT_EQ(stats.cbr_restored, 1);
    EXPECT_EQ(stats.cbr_restore_pending, 0);
    EXPECT_GT(stats.cbr_delivered, 0);
}

// ---------------------------------------------------------------------------
// Terminal states on a single-path topology

TEST(RestorationTest, SinglePathFlowAbandonedAfterBudget)
{
    topo::Topology topo = topo::Topology::star(4, 2);
    topo::Lan lan(topo, lanConfig());

    // Hosts in different buildings: the trunk is the only route.
    const NodeId src = topo.hosts().front();
    const NodeId dst = topo.hosts().back();
    const FlowId flow = lan.addCbrFlow(src, dst, 2);
    ASSERT_NE(flow, kNoFlow);

    const RestorePolicy policy = fastPolicy(/*budget=*/3);
    lan.enableRestoration(policy);
    const int dead = lan.pathLinks(lan.flowPath(flow))[1];
    lan.scheduleFaults(linkDownAt(dead, 100));
    lan.runFrames(10);

    const fault::PathRestorer* pr = lan.restorer();
    ASSERT_TRUE(pr->tracked(flow));
    EXPECT_EQ(pr->state(flow), RestoreState::Abandoned);
    EXPECT_EQ(pr->attempts(flow), policy.retry_budget + 1);
    EXPECT_EQ(pr->stats().abandoned, 1);
    EXPECT_EQ(pr->stats().retries, policy.retry_budget + 1);
    EXPECT_EQ(lan.flowInfo(flow).cbr_admitted, 0);
    EXPECT_EQ(lan.stats().cbr_abandoned, 1);
}

TEST(RestorationTest, SinglePathFlowRestoredAfterRevival)
{
    topo::Topology topo = topo::Topology::star(4, 2);
    topo::Lan lan(topo, lanConfig());
    const FlowId flow =
        lan.addCbrFlow(topo.hosts().front(), topo.hosts().back(), 2);
    ASSERT_NE(flow, kNoFlow);

    lan.enableRestoration(fastPolicy(/*budget=*/10));
    const int dead = lan.pathLinks(lan.flowPath(flow))[1];
    FaultPlan plan = linkDownAt(dead, 100);
    plan.events.push_back(FaultEvent{300, FaultKind::LinkUp, dead});
    lan.scheduleFaults(plan);
    lan.runFrames(10);

    const fault::PathRestorer* pr = lan.restorer();
    EXPECT_EQ(pr->state(flow), RestoreState::Restored);
    EXPECT_GT(pr->attempts(flow), 0);  // early retries failed
    EXPECT_EQ(lan.flowInfo(flow).cbr_admitted, 2);
    EXPECT_EQ(lan.stats().cbr_restored, 1);
}

TEST(RestorationTest, DegradedFallbackWhenFullRateWontFit)
{
    // 2x2 mesh, frame of 8 slots. Flow A (4 cells/frame) rides one
    // diagonal; a 6-cells/frame competitor pins the alternate middle
    // link. When A's trunk dies, the only live path has 2 spare slots:
    // retries at full rate fail, and budget exhaustion degrades A to 2.
    topo::Topology topo = topo::Topology::mesh(2, 2, /*torus=*/false, 2);
    topo::LanConfig config = lanConfig();
    config.net.switch_frame_slots = 8;
    topo::Lan lan(topo, config);

    const NodeId s0 = topo.hostSwitch(topo.hosts().front());
    // The diagonal switch is the one s0 has no edge to.
    NodeId diag = -1;
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        if (topo.isHost(n) || n == s0)
            continue;
        bool adjacent = false;
        for (int e = 0; e < topo.numEdges(); ++e) {
            const topo::TopoEdge& te = topo.edge(e);
            if ((te.a == s0 && te.b == n) || (te.b == s0 && te.a == n))
                adjacent = true;
        }
        if (!adjacent)
            diag = n;
    }
    ASSERT_GE(diag, 0);

    const FlowId a = lan.addCbrFlow(hostAt(topo, s0), hostAt(topo, diag), 4);
    ASSERT_NE(a, kNoFlow);
    const std::vector<NodeId> path_a = lan.flowPath(a);
    ASSERT_EQ(path_a.size(), 5u);  // host, s0, mid, diag, host
    const NodeId mid = path_a[2];

    // The alternate middle switch: adjacent to both s0 and diag, != mid.
    NodeId alt = -1;
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        if (!topo.isHost(n) && n != s0 && n != diag && n != mid)
            alt = n;
    ASSERT_GE(alt, 0);
    const FlowId competitor =
        lan.addCbrFlow(hostAt(topo, alt), hostAt(topo, diag, 1), 6);
    ASSERT_NE(competitor, kNoFlow);

    const RestorePolicy policy = fastPolicy(/*budget=*/2);
    lan.enableRestoration(policy);
    lan.scheduleFaults(linkDownAt(lan.pathLinks(path_a)[1], 100));
    lan.runFrames(20);

    const fault::PathRestorer* pr = lan.restorer();
    ASSERT_TRUE(pr->tracked(a));
    EXPECT_EQ(pr->state(a), RestoreState::Degraded);
    EXPECT_EQ(lan.flowInfo(a).cbr_admitted, 2);
    EXPECT_EQ(lan.flowInfo(a).cbr_cells, 4);
    EXPECT_FALSE(pr->tracked(competitor));
    EXPECT_EQ(lan.flowInfo(competitor).cbr_admitted, 6);
    const topo::LanStats stats = lan.stats();
    EXPECT_EQ(stats.cbr_degraded, 1);
    EXPECT_EQ(stats.cbr_restored, 0);
}

// ---------------------------------------------------------------------------
// Satellite fix: downstream release without a restorer

TEST(RestorationTest, DeadLinkReleasesDownstreamReservationsWithoutRestorer)
{
    topo::Topology topo = topo::Topology::star(4, 2);
    topo::Lan lan(topo, lanConfig());
    const FlowId flow =
        lan.addCbrFlow(topo.hosts().front(), topo.hosts().back(), 2);
    ASSERT_NE(flow, kNoFlow);

    // Kill the leaf->core trunk: the core->leaf and leaf->host hops
    // downstream hold 2 cells/frame each that nothing can ever use.
    const std::vector<LinkId> links = lan.pathLinks(lan.flowPath(flow));
    ASSERT_EQ(links.size(), 4u);
    lan.scheduleFaults(linkDownAt(links[1], 200));
    lan.runFrames(10);

    const topo::LanStats stats = lan.stats();
    EXPECT_EQ(stats.cbr_downstream_released, 2 * 2);
    EXPECT_GT(stats.link_lost, 0);  // the source keeps transmitting
    EXPECT_EQ(stats.cbr_restored, 0);
    // The freed capacity is genuinely available again downstream.
    EXPECT_TRUE(lan.net().admission().canAdmit({links[2], links[3]},
                                               lan.net().config()
                                                   .switch_frame_slots));
}

// ---------------------------------------------------------------------------
// Acceptance scenario: one trunk outage hitting many reservations

TEST(RestorationTest, TrunkOutageRestoresAllAffectedFlowsAtFullRate)
{
    // A CBR matrix on a fat-tree, then kill the busiest inter-switch
    // trunk: every reservation crossing it must end Restored at its
    // registered rate, with measured latency, and steady-state delivery
    // must return to within 1% of the pre-fault per-frame rate.
    topo::Topology topo = topo::Topology::fatTree(4, 4);
    topo::Lan lan(topo, lanConfig(5));
    ASSERT_GT(lan.placeMatrix(topo::Pattern::Uniform,
                              topo::TrafficSpec{TrafficClass::CBR, 0.0, 1},
                              4242),
              0);
    lan.enableRestoration(fastPolicy());

    std::vector<int> use(static_cast<size_t>(lan.net().numLinks()), 0);
    for (FlowId f = 0; f < lan.numFlows(); ++f)
        for (LinkId l : lan.pathLinks(lan.flowPath(f)))
            ++use[static_cast<size_t>(l)];
    int dead = -1;
    for (int l = 0; l < lan.net().numLinks(); ++l) {
        const Network::LinkEnds ends = lan.net().linkEnds(l);
        if (topo.isHost(ends.from) || topo.isHost(ends.to))
            continue;  // host access links have no alternate path
        if (dead < 0 || use[static_cast<size_t>(l)] >
                            use[static_cast<size_t>(dead)])
            dead = l;
    }
    ASSERT_GE(use[static_cast<size_t>(dead)], 5);
    std::vector<FlowId> hit;
    for (FlowId f = 0; f < lan.numFlows(); ++f) {
        const std::vector<LinkId> links = lan.pathLinks(lan.flowPath(f));
        if (std::find(links.begin(), links.end(), dead) != links.end())
            hit.push_back(f);
    }
    lan.scheduleFaults(linkDownAt(dead, 2050));

    // Pre-fault delivery rate over frames [12, 20), past the multi-hop
    // pipeline-fill ramp.
    const PicoTime frame_ps = lan.net().config().switch_frame_slots *
                              lan.net().config().slot_ps;
    lan.run(12 * frame_ps);
    const int64_t d0 = lan.stats().cbr_delivered;
    lan.run(20 * frame_ps);
    const int64_t pre = lan.stats().cbr_delivered - d0;
    ASSERT_GT(pre, 0);

    // Outage at slot 2050, then a long settle window.
    lan.run(32 * frame_ps);
    const fault::PathRestorer* pr = lan.restorer();
    ASSERT_NE(pr, nullptr);
    EXPECT_EQ(pr->stats().episodes,
              static_cast<int64_t>(hit.size()));
    EXPECT_EQ(pr->stats().restored,
              static_cast<int64_t>(hit.size()));
    EXPECT_EQ(pr->stats().latency_slots.count(),
              static_cast<int64_t>(hit.size()));
    EXPECT_EQ(pr->pendingCount(), 0);
    for (FlowId f : hit) {
        EXPECT_EQ(pr->state(f), RestoreState::Restored) << "flow " << f;
        const topo::Lan::FlowInfo info = lan.flowInfo(f);
        EXPECT_EQ(info.cbr_admitted, info.cbr_cells) << "flow " << f;
        for (LinkId l : lan.pathLinks(lan.flowPath(f))) {
            EXPECT_NE(l, dead);
            EXPECT_TRUE(lan.net().linkAt(l).isUp());
        }
    }

    // Post-restoration delivery rate over frames [32, 40).
    const int64_t d1 = lan.stats().cbr_delivered;
    lan.run(40 * frame_ps);
    const int64_t post = lan.stats().cbr_delivered - d1;
    EXPECT_NEAR(static_cast<double>(post), static_cast<double>(pre),
                0.01 * static_cast<double>(pre));
}

// ---------------------------------------------------------------------------
// Chaos churn: terminal states and reservation consistency

TEST(RestorationTest, ChaosChurnLeavesNoReservationOnADeadElement)
{
    topo::Topology topo = topo::Topology::mesh(3, 3, /*torus=*/true, 2);
    topo::Lan lan(topo, lanConfig(5));
    lan.placeMatrix(topo::Pattern::Uniform,
                    topo::TrafficSpec{TrafficClass::CBR, 0.0, 2}, 1234);
    ASSERT_GT(lan.numFlows(), 0);

    lan.enableRestoration(fastPolicy());
    const SlotTime horizon =
        30 * lan.net().config().switch_frame_slots;
    lan.scheduleFaults(fault::expandChaos(
        fault::ChaosSpec::parse("chaos(3,6,port+link+switch)"),
        fault::chaosEnvFor(lan.net(), horizon)));
    lan.runFrames(30);

    const fault::PathRestorer* pr = lan.restorer();
    ASSERT_NE(pr, nullptr);
    const fault::RestoreStats& rs = pr->stats();
    EXPECT_GT(rs.episodes, 0) << "churn never hit a CBR flow";
    // The ledger balances: every revoked slot is re-placed, shed, or
    // held by a still-pending episode (the invariant checker enforces
    // the full identity after every restorer step; here the test pins
    // the terminal part of it).
    EXPECT_EQ(rs.restored + rs.degraded + rs.abandoned + pr->pendingCount(),
              rs.episodes);
    EXPECT_GE(rs.slots_revoked, rs.slots_replaced + rs.slots_shed);
    if (pr->pendingCount() == 0) {
        EXPECT_EQ(rs.slots_revoked, rs.slots_replaced + rs.slots_shed);
    }

    // Every admitted flow references only live links; every tracked
    // flow sits in a legal state with attempts within budget.
    for (FlowId f = 0; f < lan.numFlows(); ++f) {
        const topo::Lan::FlowInfo info = lan.flowInfo(f);
        if (info.cbr_admitted > 0) {
            for (LinkId l : lan.pathLinks(lan.flowPath(f)))
                EXPECT_TRUE(lan.net().linkAt(l).isUp())
                    << "flow " << f << " reserved across dead link " << l;
        }
        if (pr->tracked(f)) {
            EXPECT_LE(pr->attempts(f), fastPolicy().retry_budget + 1);
            const RestoreState st = pr->state(f);
            EXPECT_TRUE(st == RestoreState::Pending ||
                        st == RestoreState::Restored ||
                        st == RestoreState::Degraded ||
                        st == RestoreState::Abandoned);
        }
    }
    const topo::LanStats stats = lan.stats();
    EXPECT_EQ(stats.cbr_restored + stats.cbr_degraded +
                  stats.cbr_abandoned + stats.cbr_restore_pending,
              rs.episodes);
}

// ---------------------------------------------------------------------------
// Engine byte-identity with restoration and chaos armed

topo::NetSweepSpec
chaosSpec()
{
    topo::NetSweepSpec spec;
    spec.name = "restore-test";
    spec.description = "chaos + restoration byte-identity";
    spec.topos = {{"torus(3x3)",
                   [] { return topo::Topology::mesh(3, 3, true, 2); }}};
    spec.loads = {0.1};
    spec.replicates = 2;
    spec.frames = 8;
    spec.base_seed = 99;
    spec.cbr_cells_per_frame = 2;
    spec.chaos = fault::ChaosSpec::parse("chaos(17,5,link+switch+storm)");
    spec.restore = true;
    return spec;
}

TEST(RestorationTest, ChaosSweepJsonIsByteIdenticalAcrossThreadCounts)
{
    const topo::NetSweepSpec spec = chaosSpec();
    const std::string serial =
        netSweepToJson(spec, runNetSweep(spec, 1));
    EXPECT_NE(serial.find("\"chaos\""), std::string::npos);
    EXPECT_NE(serial.find("\"cbr_restored\""), std::string::npos);
    EXPECT_NE(serial.find("\"restore\""), std::string::npos);
    EXPECT_EQ(netSweepToJson(spec, runNetSweep(spec, 2)), serial);
    EXPECT_EQ(netSweepToJson(spec, runNetSweep(spec, 8)), serial);
}

TEST(RestorationTest, ChaosMetricsSeriesIsByteIdenticalAcrossThreadCounts)
{
    const topo::NetSweepSpec spec = chaosSpec();
    auto lines = [&](int threads) {
        topo::LanMetricsSeries series(spec.net.switch_frame_slots);
        observeNetPoint(spec, threads, series);
        return series.toJsonLines();
    };
    const std::string serial = lines(1);
    EXPECT_NE(serial.find("\"cbr_restore_retries\""), std::string::npos);
    EXPECT_NE(serial.find("\"cbr_restore_pending\""), std::string::npos);
    EXPECT_EQ(lines(2), serial);
    EXPECT_EQ(lines(8), serial);
}

TEST(RestorationTest, RestorationKeysAppearOnlyWhenArmed)
{
    topo::NetSweepSpec spec = chaosSpec();
    spec.chaos = fault::ChaosSpec{};
    spec.restore = false;
    const std::string clean = netSweepToJson(spec, runNetSweep(spec, 1));
    EXPECT_EQ(clean.find("\"chaos\""), std::string::npos);
    EXPECT_EQ(clean.find("\"restore\""), std::string::npos);
    EXPECT_EQ(clean.find("\"cbr_restored\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// ParallelNet watchdog

TEST(RestorationTest, WatchdogDoesNotTripOnAHealthyRun)
{
    topo::Topology topo = topo::Topology::star(4, 2);
    topo::Lan lan(topo, lanConfig());
    lan.placeMatrix(topo::Pattern::Uniform,
                    topo::TrafficSpec{TrafficClass::VBR, 0.1, 0}, 7);

    topo::ParallelNet engine(lan.net(), 2);
    engine.setWatchdog(1);  // tightest possible: any stall would be fatal
    const PicoTime until =
        20 * lan.net().config().switch_frame_slots *
        lan.net().config().slot_ps;
    EXPECT_NO_THROW(engine.run(until));
    EXPECT_GT(engine.windows(), 0);
}

TEST(RestorationTest, WatchdogRejectsNegativeLimit)
{
    topo::Topology topo = topo::Topology::star(4, 2);
    topo::Lan lan(topo, lanConfig());
    topo::ParallelNet engine(lan.net(), 2);
    EXPECT_THROW(engine.setWatchdog(-1), UsageError);
    EXPECT_NO_THROW(engine.setWatchdog(0));  // disabled is legal
}

}  // namespace
}  // namespace an2
