// Tests for error reporting (an2/base/error.h).
#include "an2/base/error.h"

#include <gtest/gtest.h>

#include <string>

namespace an2 {
namespace {

TEST(ErrorTest, FatalThrowsUsageError)
{
    EXPECT_THROW(AN2_FATAL("bad input " << 42), UsageError);
}

TEST(ErrorTest, PanicThrowsInternalError)
{
    EXPECT_THROW(AN2_PANIC("broken invariant"), InternalError);
}

TEST(ErrorTest, MessagesCarryLocationAndText)
{
    try {
        AN2_FATAL("value=" << 7);
        FAIL() << "expected throw";
    } catch (const UsageError& e) {
        std::string what = e.what();
        EXPECT_NE(what.find("value=7"), std::string::npos);
        EXPECT_NE(what.find("error_test.cc"), std::string::npos);
    }
}

TEST(ErrorTest, AssertPassesWhenTrue)
{
    EXPECT_NO_THROW(AN2_ASSERT(1 + 1 == 2, "math works"));
}

TEST(ErrorTest, AssertThrowsWhenFalse)
{
    EXPECT_THROW(AN2_ASSERT(false, "must fail"), InternalError);
}

TEST(ErrorTest, RequirePassesAndFails)
{
    EXPECT_NO_THROW(AN2_REQUIRE(true, "ok"));
    EXPECT_THROW(AN2_REQUIRE(false, "nope"), UsageError);
}

TEST(ErrorTest, UsageErrorIsInvalidArgument)
{
    // Callers may catch std::invalid_argument for usage errors.
    EXPECT_THROW(AN2_REQUIRE(false, "x"), std::invalid_argument);
}

TEST(ErrorTest, InternalErrorIsLogicError)
{
    EXPECT_THROW(AN2_PANIC("x"), std::logic_error);
}

}  // namespace
}  // namespace an2
