/** Topology container rules and generator invariants. */
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "an2/base/error.h"
#include "an2/topo/topology.h"

using namespace an2;
using namespace an2::topo;

namespace {

/** Number of switch-to-switch edges. */
int
trunkEdges(const Topology& t)
{
    int n = 0;
    for (int e = 0; e < t.numEdges(); ++e) {
        const TopoEdge& te = t.edge(e);
        if (!t.isHost(te.a) && !t.isHost(te.b))
            ++n;
    }
    return n;
}

}  // namespace

TEST(TopologyTest, BuildRules)
{
    Topology t("tiny");
    NodeId s0 = t.addNode(NodeKind::Switch);
    NodeId s1 = t.addNode(NodeKind::Switch);
    NodeId h = t.addNode(NodeKind::Host);
    EXPECT_EQ(t.link(s0, s1, 100), 0);
    EXPECT_EQ(t.link(h, s0, 50), 1);

    EXPECT_EQ(t.numNodes(), 3);
    EXPECT_EQ(t.numHosts(), 1);
    EXPECT_EQ(t.numSwitches(), 2);
    EXPECT_EQ(t.hostSwitch(h), s0);
    EXPECT_EQ(t.minLatency(), 50);
    EXPECT_EQ(t.degree(s0), 2);
    EXPECT_EQ(t.degree(h), 1);

    EXPECT_THROW(t.link(s0, s0, 100), UsageError);       // self-edge
    EXPECT_THROW(t.link(s1, s0, 100), UsageError);       // duplicate
    EXPECT_THROW(t.link(h, s1, 100), UsageError);        // host re-attach
    NodeId s2 = t.addNode(NodeKind::Switch);
    EXPECT_THROW(t.link(s0, s2, 0), UsageError);         // zero latency
    EXPECT_THROW(t.link(s0, static_cast<NodeId>(99), 1), UsageError);
}

TEST(TopologyTest, StarShape)
{
    Topology t = Topology::star(3, 4);
    EXPECT_EQ(t.numSwitches(), 4);
    EXPECT_EQ(t.numHosts(), 12);
    EXPECT_EQ(t.numEdges(), 3 + 12);
    // The core (node 0) sees every leaf; each leaf sees the core plus
    // its hosts.
    EXPECT_EQ(t.degree(0), 3);
    for (NodeId leaf = 1; leaf <= 3; ++leaf)
        EXPECT_EQ(t.degree(leaf), 1 + 4);
    for (NodeId h : t.hosts())
        EXPECT_FALSE(t.isHost(t.hostSwitch(h)));
}

TEST(TopologyTest, FatTreeShape)
{
    const int k = 4;
    const int half = k / 2;
    Topology t = Topology::fatTree(k, 2);

    EXPECT_EQ(t.numSwitches(), half * half + k * k);  // core + k pods
    EXPECT_EQ(t.numHosts(), k * half * 2);
    // Core switches come first and connect to one aggregation switch
    // per pod.
    for (NodeId c = 0; c < half * half; ++c) {
        EXPECT_EQ(t.degree(c), k);
        std::set<NodeId> pods;
        for (const Neighbor& nb : t.neighbors(c))
            pods.insert((nb.node - half * half) / (2 * half));
        EXPECT_EQ(static_cast<int>(pods.size()), k);
    }
    // Every non-core switch has exactly k ports: aggregation is half up
    // + half down, edge is half up + hosts_per_edge=2 hosts.
    for (NodeId s = half * half; s < t.numSwitches(); ++s)
        EXPECT_EQ(t.degree(s), k);
}

TEST(TopologyTest, FatTreeBisection)
{
    // hosts_per_edge = k/2 is the full-bisection configuration: the
    // core-layer capacity (k^3/4 trunks) equals the host count.
    const int k = 4;
    Topology t = Topology::fatTree(k, k / 2);
    int core_edges = 0;
    for (int e = 0; e < t.numEdges(); ++e)
        if (t.edge(e).a < k * k / 4 || t.edge(e).b < k * k / 4)
            ++core_edges;
    EXPECT_EQ(core_edges, k * k * k / 4);
    EXPECT_EQ(t.numHosts(), core_edges);
}

TEST(TopologyTest, TorusWraparound)
{
    Topology mesh = Topology::mesh(3, 4, false, 1);
    Topology torus = Topology::mesh(3, 4, true, 1);

    // Mesh: interior degrees vary; torus wraparound makes every switch
    // exactly 4-connected.
    EXPECT_EQ(trunkEdges(mesh), 3 * 3 + 2 * 4);
    EXPECT_EQ(trunkEdges(torus), 2 * 3 * 4);
    EXPECT_EQ(mesh.degree(0), 2 + 1);  // corner: right + down + host
    for (NodeId s = 0; s < torus.numSwitches(); ++s)
        EXPECT_EQ(torus.degree(s), 4 + 1);
    EXPECT_THROW(Topology::mesh(2, 4, true, 1), UsageError);
}

TEST(TopologyTest, RingCycle)
{
    Topology t = Topology::ring(5, 2);
    EXPECT_EQ(t.numSwitches(), 5);
    EXPECT_EQ(t.numHosts(), 10);
    EXPECT_EQ(trunkEdges(t), 5);
    for (NodeId s = 0; s < 5; ++s)
        EXPECT_EQ(t.degree(s), 2 + 2);
    EXPECT_THROW(Topology::ring(2, 1), UsageError);
}

TEST(TopologyTest, RandomRegularIsRegularAndSimple)
{
    const int n = 12;
    const int d = 3;
    Topology t = Topology::randomRegular(n, d, 1, 42);
    EXPECT_EQ(trunkEdges(t), n * d / 2);
    std::set<std::pair<NodeId, NodeId>> seen;
    for (int e = 0; e < trunkEdges(t); ++e) {
        const TopoEdge& te = t.edge(e);
        EXPECT_NE(te.a, te.b);
        EXPECT_TRUE(seen.emplace(std::min(te.a, te.b),
                                 std::max(te.a, te.b)).second);
    }
    for (NodeId s = 0; s < n; ++s)
        EXPECT_EQ(t.degree(s), d + 1);

    EXPECT_THROW(Topology::randomRegular(5, 3, 1, 1), UsageError);  // odd
    EXPECT_THROW(Topology::randomRegular(3, 3, 1, 1), UsageError);  // d >= n
}

TEST(TopologyTest, RandomRegularDeterministicInSeed)
{
    Topology a = Topology::randomRegular(10, 4, 0, 7);
    Topology b = Topology::randomRegular(10, 4, 0, 7);
    Topology c = Topology::randomRegular(10, 4, 0, 8);
    ASSERT_EQ(a.numEdges(), b.numEdges());
    bool same_as_c = a.numEdges() == c.numEdges();
    for (int e = 0; e < a.numEdges(); ++e) {
        EXPECT_EQ(a.edge(e).a, b.edge(e).a);
        EXPECT_EQ(a.edge(e).b, b.edge(e).b);
        if (same_as_c)
            same_as_c = a.edge(e).a == c.edge(e).a &&
                        a.edge(e).b == c.edge(e).b;
    }
    EXPECT_FALSE(same_as_c);  // different seed, different pairing
}
