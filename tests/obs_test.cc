// Unit tests for the observability layer (an2/obs): probe attachment,
// counter/gauge registry, the drop-oldest event ring, per-slot
// histograms, and snapshot sampling through InputQueuedSwitch.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "an2/matching/pim.h"
#include "an2/obs/recorder.h"
#include "an2/obs/snapshot.h"
#include "an2/sim/iq_switch.h"
#include "an2/sim/simulator.h"
#include "an2/sim/traffic.h"

// Tests that route observations through attached probes cannot see
// anything when the layer is compiled out.
#ifdef AN2_OBS_DISABLED
#define SKIP_IF_OBS_DISABLED() \
    GTEST_SKIP() << "obs layer compiled out (AN2_OBS_DISABLED)"
#else
#define SKIP_IF_OBS_DISABLED() (void)0
#endif

namespace an2::obs {
namespace {

Cell
vbrCell(FlowId flow, PortId in, PortId out, int64_t seq = 0)
{
    Cell c;
    c.flow = flow;
    c.input = in;
    c.output = out;
    c.seq = seq;
    return c;
}

TEST(ProbeTest, UnattachedByDefault)
{
    EXPECT_EQ(current(), nullptr);
    // Probes through the helpers are harmless no-ops when unattached.
    count(Counter::SlotsRun);
    setGauge(Gauge::BufferedCells, 7);
    slotBegin(3);
    slotEnd(1, 0, 1);
}

TEST(ProbeTest, AttachDetachRoundTrip)
{
    SKIP_IF_OBS_DISABLED();
    Recorder rec;
    attach(&rec);
    EXPECT_EQ(current(), &rec);
    count(Counter::SlotsRun, 5);
    detach();
    EXPECT_EQ(current(), nullptr);
    EXPECT_EQ(rec.counter(Counter::SlotsRun), 5);
}

TEST(ProbeTest, RecorderDetachesItselfOnDestruction)
{
    SKIP_IF_OBS_DISABLED();
    {
        Recorder rec;
        attach(&rec);
        EXPECT_EQ(current(), &rec);
    }
    EXPECT_EQ(current(), nullptr);
}

TEST(ProbeTest, AllCountersAndGaugesAreNamed)
{
    for (int c = 0; c < static_cast<int>(Counter::kCount); ++c)
        EXPECT_STRNE(counterName(static_cast<Counter>(c)), "unknown");
    for (int g = 0; g < static_cast<int>(Gauge::kCount); ++g)
        EXPECT_STRNE(gaugeName(static_cast<Gauge>(g)), "unknown");
}

TEST(RecorderTest, CountersAndGauges)
{
    Recorder rec;
    rec.add(Counter::CellsEnqueued, 3);
    rec.add(Counter::CellsEnqueued, 2);
    rec.set(Gauge::BufferedCells, 10);
    rec.set(Gauge::BufferedCells, 4);  // last write wins
    EXPECT_EQ(rec.counter(Counter::CellsEnqueued), 5);
    EXPECT_EQ(rec.counter(Counter::CellsDequeued), 0);
    EXPECT_EQ(rec.gauge(Gauge::BufferedCells), 4);
}

TEST(RecorderTest, ZeroCapacityRingRecordsNothing)
{
    Recorder rec;  // trace_capacity defaults to 0
    EXPECT_FALSE(rec.tracing());
    rec.beginSlot(0);
    rec.cellEnqueued(vbrCell(1, 0, 1));
    rec.endSlot(0, 0, 0);
    EXPECT_EQ(rec.eventCount(), 0u);
    EXPECT_EQ(rec.droppedEvents(), 0);
    // Counters still accumulate without a ring.
    EXPECT_EQ(rec.counter(Counter::SlotsRun), 1);
    EXPECT_EQ(rec.counter(Counter::CellsEnqueued), 1);
}

TEST(RecorderTest, RingDropsOldestWhenFull)
{
    Recorder rec(RecorderConfig{.trace_capacity = 3});
    ASSERT_TRUE(rec.tracing());
    for (int k = 0; k < 5; ++k)
        rec.cellEnqueued(vbrCell(k, 0, 1, k));
    EXPECT_EQ(rec.eventCount(), 3u);
    EXPECT_EQ(rec.droppedEvents(), 2);
    // The three *most recent* events survive, oldest first.
    EXPECT_EQ(rec.event(0).c, 2);
    EXPECT_EQ(rec.event(1).c, 3);
    EXPECT_EQ(rec.event(2).c, 4);
}

TEST(RecorderTest, EventsCarryTheCurrentSlot)
{
    Recorder rec(RecorderConfig{.trace_capacity = 16});
    rec.cellEnqueued(vbrCell(1, 0, 1));  // before any slot: stamped -1
    rec.beginSlot(42);
    rec.cellDequeued(vbrCell(1, 0, 1));
    EXPECT_EQ(rec.event(0).slot, -1);
    EXPECT_EQ(rec.event(1).type, EventType::SlotBegin);
    EXPECT_EQ(rec.event(1).slot, 42);
    EXPECT_EQ(rec.event(2).slot, 42);
}

TEST(RecorderTest, MatchIterationCounterDerivation)
{
    Recorder rec;
    rec.beginSlot(0);
    // Iteration 0: 10 requests, 4 grants, 3 accepts, 3 matched total.
    rec.matchIteration(MatchAlg::Pim, 0, 10, 4, 3, 3);
    // Iteration 1: 4 requests, 2 grants, 1 accept, 4 matched total — the
    // 3 earlier matches are keep-grant retentions.
    rec.matchIteration(MatchAlg::Pim, 1, 4, 2, 1, 4);
    // Iteration 2: nothing left.
    rec.matchIteration(MatchAlg::Pim, 2, 0, 0, 0, 4);
    rec.endSlot(4, 0, 4);

    EXPECT_EQ(rec.counter(Counter::MatchIterations), 3);
    EXPECT_EQ(rec.counter(Counter::ProductiveIterations), 2);
    EXPECT_EQ(rec.counter(Counter::RequestsSeen), 14);
    EXPECT_EQ(rec.counter(Counter::GrantsIssued), 6);
    EXPECT_EQ(rec.counter(Counter::AcceptsIssued), 4);
    EXPECT_EQ(rec.counter(Counter::KeepGrantRetained), 0 + 3 + 4);
    EXPECT_EQ(rec.gauge(Gauge::LastMatchSize), 4);
}

TEST(RecorderTest, IterationsPerSlotHistogram)
{
    Recorder rec(RecorderConfig{.max_iterations = 4});
    // Slot with 2 productive iterations.
    rec.beginSlot(0);
    rec.matchIteration(MatchAlg::Pim, 0, 5, 3, 2, 2);
    rec.matchIteration(MatchAlg::Pim, 1, 2, 1, 1, 3);
    rec.matchIteration(MatchAlg::Pim, 2, 0, 0, 0, 3);
    rec.endSlot(3, 0, 3);
    // Idle slot: 0 productive iterations.
    rec.beginSlot(1);
    rec.endSlot(0, 0, 0);
    // Slot overflowing the histogram clamps into the last bin.
    rec.beginSlot(2);
    for (int it = 0; it < 9; ++it)
        rec.matchIteration(MatchAlg::Pim, it, 2, 1, 1, it + 1);
    rec.endSlot(9, 0, 9);

    const auto& h = rec.iterationsPerSlotHistogram();
    ASSERT_EQ(h.size(), 4u);
    EXPECT_EQ(h[0], 1);
    EXPECT_EQ(h[1], 0);
    EXPECT_EQ(h[2], 1);
    EXPECT_EQ(h[3], 1);  // the 9-iteration slot, clamped
}

TEST(RecorderTest, MatchSizeHistogramNeedsPorts)
{
    Recorder without;
    without.beginSlot(0);
    without.endSlot(2, 0, 2);
    EXPECT_TRUE(without.matchSizeHistogram().empty());

    Recorder with(RecorderConfig{.ports = 4});
    with.beginSlot(0);
    with.endSlot(2, 0, 2);
    with.beginSlot(1);
    with.endSlot(4, 0, 4);
    const auto& h = with.matchSizeHistogram();
    ASSERT_EQ(h.size(), 5u);
    EXPECT_EQ(h[2], 1);
    EXPECT_EQ(h[4], 1);
}

TEST(RecorderTest, SnapshotDueSchedule)
{
    Recorder off;
    EXPECT_FALSE(off.snapshotsEnabled());
    EXPECT_FALSE(off.snapshotDue(0));

    Recorder on(RecorderConfig{.snapshot_every = 4, .ports = 2});
    EXPECT_TRUE(on.snapshotsEnabled());
    EXPECT_FALSE(on.snapshotDue(0));
    EXPECT_TRUE(on.snapshotDue(3));
    EXPECT_FALSE(on.snapshotDue(4));
    EXPECT_TRUE(on.snapshotDue(7));
}

TEST(RecorderTest, SnapshotsRequirePorts)
{
    EXPECT_THROW(Recorder(RecorderConfig{.snapshot_every = 8}),
                 UsageError);
}

TEST(SnapshotTest, LineFormat)
{
    const int32_t voq[4] = {1, 0, 2, 3};
    const int32_t backlog[2] = {3, 3};
    std::string line = snapshotLine(9, 2, voq, backlog, 6, {4, 1, 1});
    EXPECT_EQ(line,
              "{\"schema\":\"an2.snapshot.v1\",\"slot\":9,\"ports\":2,"
              "\"buffered\":6,\"voq\":[[1,0],[2,3]],"
              "\"output_backlog\":[3,3],\"match_size_hist\":[4,1,1]}\n");
}

TEST(SwitchSnapshotTest, PeriodicSnapshotsThroughRunSlot)
{
    SKIP_IF_OBS_DISABLED();
    const int n = 4;
    Recorder rec(RecorderConfig{.snapshot_every = 4, .ports = n});
    attach(&rec);
    InputQueuedSwitch sw(IqSwitchConfig{.n = n},
                         std::make_unique<PimMatcher>(
                             PimConfig{.iterations = 4, .seed = 9}));
    UniformTraffic traffic(n, 0.8, 11);
    std::vector<Cell> arrivals;
    for (SlotTime slot = 0; slot < 8; ++slot) {
        arrivals.clear();
        traffic.generate(slot, arrivals);
        for (const Cell& c : arrivals)
            sw.acceptCell(c);
        sw.runSlot(slot);
    }
    detach();

    EXPECT_EQ(rec.counter(Counter::SnapshotsTaken), 2);
    // Two JSON lines, each tagged with the snapshot schema.
    const std::string& lines = rec.snapshotLines();
    size_t first_nl = lines.find('\n');
    ASSERT_NE(first_nl, std::string::npos);
    EXPECT_EQ(lines.find("\"schema\":\"an2.snapshot.v1\""), 1u);
    EXPECT_NE(lines.find("\"schema\":\"an2.snapshot.v1\"", first_nl),
              std::string::npos);
    EXPECT_EQ(lines.back(), '\n');
    EXPECT_NE(lines.find("\"slot\":3"), std::string::npos);
    EXPECT_NE(lines.find("\"slot\":7"), std::string::npos);
}

TEST(SimulatorTest, BufferedCellsGaugeTracksSwitch)
{
    SKIP_IF_OBS_DISABLED();
    const int n = 4;
    Recorder rec;
    attach(&rec);
    InputQueuedSwitch sw(IqSwitchConfig{.n = n},
                         std::make_unique<PimMatcher>(
                             PimConfig{.iterations = 4, .seed = 13}));
    UniformTraffic traffic(n, 0.9, 17);
    SimConfig cfg;
    cfg.slots = 50;
    cfg.warmup = 10;
    runSimulation(sw, traffic, cfg);
    detach();
    EXPECT_EQ(rec.gauge(Gauge::BufferedCells), sw.bufferedCells());
    EXPECT_EQ(rec.counter(Counter::SlotsRun), 50);
    EXPECT_EQ(rec.counter(Counter::CellsEnqueued) -
                  rec.counter(Counter::CellsDequeued),
              sw.bufferedCells());
}

}  // namespace
}  // namespace an2::obs
