// The contract an2.netsweep.v1 documents ride on: the engine thread
// count is a wall-clock choice, never a results choice. These tests run
// the same NetSweepSpec on the serial loop and on the sharded engine at
// several thread counts and require the serialized JSON — every digit
// of every aggregate — to be byte-identical, with and without a link
// fault plan.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "an2/fault/fault_plan.h"
#include "an2/topo/net_metrics.h"
#include "an2/topo/net_sweep.h"

namespace an2::topo {
namespace {

NetSweepSpec
smallSpec()
{
    NetSweepSpec spec;
    spec.name = "netsweep-test";
    spec.description = "tiny star + torus grid for byte-identity tests";
    spec.topos = {{"star(4x2)", [] { return Topology::star(4, 2); }},
                  {"torus(3x3)",
                   [] { return Topology::mesh(3, 3, true, 2); }}};
    spec.loads = {0.1, 0.2};
    spec.replicates = 2;
    spec.frames = 5;
    spec.base_seed = 77;
    return spec;
}

std::string
jsonAtThreads(const NetSweepSpec& spec, int engine_threads)
{
    return netSweepToJson(spec, runNetSweep(spec, engine_threads));
}

TEST(NetSweepTest, JsonIsByteIdenticalAcrossEngineThreadCounts)
{
    NetSweepSpec spec = smallSpec();
    const std::string serial = jsonAtThreads(spec, 1);
    EXPECT_FALSE(serial.empty());
    EXPECT_NE(serial.find("\"an2.netsweep.v1\""), std::string::npos);
    EXPECT_EQ(jsonAtThreads(spec, 2), serial);
    EXPECT_EQ(jsonAtThreads(spec, 8), serial);
}

TEST(NetSweepTest, JsonIsByteIdenticalUnderLinkFaults)
{
    NetSweepSpec spec = smallSpec();
    // Down one trunk direction early, revive it later; both test topos
    // have more than four directed links, so target 3 is always valid.
    spec.faults = fault::FaultPlan::parse("link_down(3)@40,link_up(3)@400");
    const std::string serial = jsonAtThreads(spec, 1);
    EXPECT_NE(serial.find("\"faults\""), std::string::npos);
    EXPECT_NE(serial.find("\"reroutes\""), std::string::npos);
    EXPECT_EQ(jsonAtThreads(spec, 2), serial);
    EXPECT_EQ(jsonAtThreads(spec, 8), serial);
}

TEST(NetSweepTest, JsonIsByteIdenticalUnderRevivalStorm)
{
    // Flap the same link twice in quick succession (kill -> revive ->
    // kill -> revive, all inside one metrics window). Every router in
    // every shard must rebuild its cached fields on each epoch bump;
    // a stale next-hop in any one shard would desynchronize the
    // engines and break byte-identity.
    NetSweepSpec spec = smallSpec();
    spec.faults = fault::FaultPlan::parse(
        "link_down(3)@40,link_up(3)@60,link_down(3)@80,link_up(3)@400");
    const std::string serial = jsonAtThreads(spec, 1);
    EXPECT_NE(serial.find("\"faults\""), std::string::npos);
    EXPECT_EQ(jsonAtThreads(spec, 2), serial);
    EXPECT_EQ(jsonAtThreads(spec, 8), serial);
}

TEST(NetSweepTest, FaultKeysAppearOnlyUnderAFaultPlan)
{
    NetSweepSpec spec = smallSpec();
    const std::string clean = jsonAtThreads(spec, 1);
    EXPECT_EQ(clean.find("\"faults\""), std::string::npos);
    EXPECT_EQ(clean.find("\"reroutes\""), std::string::npos);
    EXPECT_EQ(clean.find("\"link_lost\""), std::string::npos);
}

TEST(NetSweepTest, CellGridIsTopoMajorAndPopulated)
{
    NetSweepSpec spec = smallSpec();
    std::vector<NetCellSummary> cells = runNetSweep(spec, 2);
    ASSERT_EQ(cells.size(), spec.topos.size() * spec.loads.size());
    for (size_t ti = 0; ti < spec.topos.size(); ++ti) {
        for (size_t li = 0; li < spec.loads.size(); ++li) {
            const NetCellSummary& c = cells[ti * spec.loads.size() + li];
            EXPECT_EQ(c.topo, spec.topos[ti].name);
            EXPECT_DOUBLE_EQ(c.load, spec.loads[li]);
            EXPECT_EQ(c.replicates, spec.replicates);
            EXPECT_GT(c.injected, 0);
            EXPECT_GT(c.delivered, 0);
            EXPECT_GT(c.throughput.mean, 0.0);
            EXPECT_LE(c.throughput.mean, 1.0);
        }
    }
}

std::string
metricsAtThreads(const NetSweepSpec& spec, int engine_threads,
                 int64_t every_slots)
{
    LanMetricsSeries series(every_slots);
    observeNetPoint(spec, engine_threads, series);
    return series.toJsonLines();
}

TEST(NetMetricsTest, SeriesIsByteIdenticalAcrossEngineThreadCounts)
{
    // The shard-merge contract extends to the metrics time series: the
    // observed point's an2.metrics.v1 lines — every counter and every
    // digit of every float — must not depend on the engine threading.
    NetSweepSpec spec = smallSpec();
    const std::string serial = metricsAtThreads(spec, 1, /*every=*/100);
    EXPECT_FALSE(serial.empty());
    EXPECT_NE(serial.find("\"an2.metrics.v1\""), std::string::npos);
    EXPECT_NE(serial.find("\"source\":\"lan\""), std::string::npos);
    EXPECT_EQ(metricsAtThreads(spec, 2, 100), serial);
    EXPECT_EQ(metricsAtThreads(spec, 8, 100), serial);
}

TEST(NetMetricsTest, SeriesIsByteIdenticalUnderLinkFaults)
{
    NetSweepSpec spec = smallSpec();
    spec.faults = fault::FaultPlan::parse("link_down(3)@40,link_up(3)@400");
    const std::string serial = metricsAtThreads(spec, 1, /*every=*/100);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(metricsAtThreads(spec, 2, 100), serial);
    EXPECT_EQ(metricsAtThreads(spec, 8, 100), serial);
}

TEST(NetMetricsTest, SamplesLandOnWindowBoundaries)
{
    NetSweepSpec spec = smallSpec();
    LanMetricsSeries series(/*every_slots=*/150);
    observeNetPoint(spec, 2, series);
    // 5 frames x 100 slots = 500 slots: boundaries at 150, 300, 450,
    // then the tail sample at the run's end.
    ASSERT_EQ(series.size(), 4u);
    EXPECT_EQ(series.at(0).slot, 150);
    EXPECT_EQ(series.at(2).slot, 450);
    EXPECT_EQ(series.at(3).slot, 500);
    // Cumulative: injections never decrease, and the final sample
    // matches a straight runFrames() of the same point.
    for (size_t k = 1; k < series.size(); ++k)
        EXPECT_GE(series.at(k).stats.injected,
                  series.at(k - 1).stats.injected);
    EXPECT_GT(series.at(3).stats.delivered, 0);
    // Per-class splits partition the totals.
    const LanStats& last = series.at(3).stats;
    EXPECT_EQ(last.cbr_injected + last.vbr_injected, last.injected);
    EXPECT_EQ(last.cbr_delivered + last.vbr_delivered, last.delivered);
}

TEST(NetSweepTest, RejectsNonPositiveAndOverUnityLoads)
{
    NetSweepSpec bad = smallSpec();
    bad.loads = {0.1, 0.0};
    EXPECT_THROW(runNetSweep(bad, 1), UsageError);
    bad.loads = {1.5};
    EXPECT_THROW(runNetSweep(bad, 1), UsageError);
}

TEST(NetSweepTest, RejectsFaultTargetsOutsideTheTopology)
{
    NetSweepSpec spec = smallSpec();
    spec.faults = fault::FaultPlan::parse("link_down(100000)@40");
    EXPECT_THROW(runNetSweep(spec, 1), UsageError);
}

}  // namespace
}  // namespace an2::topo
