// Conformance property suite: every scheduling algorithm in an2sim must
// satisfy the same contract — legal matchings, respected capacities,
// graceful handling of degenerate patterns — across a common sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "an2/matching/fill_in.h"
#include "an2/matching/hopcroft_karp.h"
#include "an2/matching/islip.h"
#include "an2/matching/pim.h"
#include "an2/matching/pim_fast.h"
#include "an2/matching/serial_greedy.h"
#include "an2/matching/statistical.h"

namespace an2 {
namespace {

using MatcherFactory = std::function<std::unique_ptr<Matcher>(int n)>;

struct NamedFactory
{
    std::string label;
    MatcherFactory make;
};

std::vector<NamedFactory>
allFactories()
{
    std::vector<NamedFactory> fs;
    fs.push_back({"pim4", [](int) {
                      return std::make_unique<PimMatcher>(
                          PimConfig{.iterations = 4, .seed = 1});
                  }});
    fs.push_back({"pim_complete", [](int) {
                      return std::make_unique<PimMatcher>(
                          PimConfig{.iterations = 0, .seed = 2});
                  }});
    fs.push_back({"pim_rr", [](int) {
                      PimConfig cfg;
                      cfg.iterations = 4;
                      cfg.accept = AcceptPolicy::RoundRobin;
                      cfg.seed = 3;
                      return std::make_unique<PimMatcher>(cfg);
                  }});
    fs.push_back({"islip", [](int) {
                      return std::make_unique<IslipMatcher>(4);
                  }});
    fs.push_back({"greedy_random", [](int) {
                      return std::make_unique<SerialGreedyMatcher>(true, 4);
                  }});
    fs.push_back({"greedy_fixed", [](int) {
                      return std::make_unique<SerialGreedyMatcher>(false);
                  }});
    fs.push_back({"hopcroft_karp", [](int) {
                      return std::make_unique<HopcroftKarpMatcher>();
                  }});
    fs.push_back({"statistical", [](int n) {
                      Matrix<int> alloc(n, n, 1000 / n);
                      StatisticalConfig cfg;
                      cfg.units = 1000;
                      cfg.rounds = 2;
                      cfg.seed = 5;
                      return std::make_unique<StatisticalMatcher>(alloc,
                                                                  cfg);
                  }});
    fs.push_back({"fast_pim", [](int) {
                      return std::make_unique<FastPimMatcher>(4, 6);
                  }});
    fs.push_back({"stat_plus_pim", [](int n) {
                      Matrix<int> alloc(n, n, 1000 / n);
                      StatisticalConfig scfg;
                      scfg.units = 1000;
                      scfg.seed = 7;
                      PimConfig pcfg;
                      pcfg.iterations = 4;
                      pcfg.seed = 8;
                      return std::make_unique<FillInMatcher>(
                          std::make_unique<StatisticalMatcher>(alloc, scfg),
                          std::make_unique<PimMatcher>(pcfg));
                  }});
    return fs;
}

class MatcherConformanceTest
    : public ::testing::TestWithParam<::testing::tuple<int, int>>
{
  protected:
    int factoryIndex() const { return ::testing::get<0>(GetParam()); }
    int size() const { return ::testing::get<1>(GetParam()); }

    std::unique_ptr<Matcher>
    makeMatcher()
    {
        return allFactories()[static_cast<size_t>(factoryIndex())].make(
            size());
    }
};

/** Check basic sanity of a matching against its request matrix. */
void
expectWellFormed(const Matching& m, const RequestMatrix& req)
{
    EXPECT_TRUE(m.isLegalFor(req));
    std::vector<int> out_used(static_cast<size_t>(req.numOutputs()), 0);
    for (auto [i, j] : m.pairs()) {
        EXPECT_GE(i, 0);
        EXPECT_LT(i, req.numInputs());
        ++out_used[static_cast<size_t>(j)];
    }
    for (int u : out_used)
        EXPECT_LE(u, 1);
}

TEST_P(MatcherConformanceTest, LegalAcrossDensities)
{
    auto matcher = makeMatcher();
    Xoshiro256 rng(static_cast<uint64_t>(7 * size() + factoryIndex()));
    for (double p : {0.05, 0.3, 0.7, 1.0}) {
        for (int t = 0; t < 10; ++t) {
            auto req = RequestMatrix::bernoulli(size(), p, rng);
            expectWellFormed(matcher->match(req), req);
        }
    }
}

TEST_P(MatcherConformanceTest, EmptyRequestsYieldEmptyMatch)
{
    auto matcher = makeMatcher();
    RequestMatrix req(size());
    EXPECT_EQ(matcher->match(req).size(), 0);
}

TEST_P(MatcherConformanceTest, PermutationPatternHandled)
{
    auto matcher = makeMatcher();
    RequestMatrix req(size());
    for (PortId i = 0; i < size(); ++i)
        req.set(i, (i + 1) % size(), 1);
    Matching m = matcher->match(req);
    expectWellFormed(m, req);
    // All non-statistical matchers must find the full permutation; the
    // statistical matcher intentionally idles ~28% of slots.
    std::string label = allFactories()[static_cast<size_t>(factoryIndex())]
                            .label;
    if (label != "statistical")
        EXPECT_EQ(m.size(), size());
}

TEST_P(MatcherConformanceTest, SingleColumnContention)
{
    // Everyone wants output 0: exactly one winner per slot.
    auto matcher = makeMatcher();
    RequestMatrix req(size());
    for (PortId i = 0; i < size(); ++i)
        req.set(i, 0, 1);
    for (int t = 0; t < 20; ++t) {
        Matching m = matcher->match(req);
        expectWellFormed(m, req);
        EXPECT_LE(m.size(), 1);
    }
}

TEST_P(MatcherConformanceTest, SingleRowFanOut)
{
    // One input wants everything: at most one accept per slot.
    auto matcher = makeMatcher();
    RequestMatrix req(size());
    for (PortId j = 0; j < size(); ++j)
        req.set(0, j, 1);
    for (int t = 0; t < 20; ++t) {
        Matching m = matcher->match(req);
        expectWellFormed(m, req);
        EXPECT_LE(m.size(), 1);
    }
}

TEST_P(MatcherConformanceTest, RepeatedCallsStayLegal)
{
    // State carried across slots (pointers, PRNG) must never corrupt
    // legality, including when the pattern changes every slot.
    auto matcher = makeMatcher();
    Xoshiro256 rng(static_cast<uint64_t>(13 + factoryIndex()));
    for (int t = 0; t < 200; ++t) {
        auto req = RequestMatrix::bernoulli(size(),
                                            0.1 + 0.8 * rng.nextDouble(),
                                            rng);
        expectWellFormed(matcher->match(req), req);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllMatchers, MatcherConformanceTest,
    ::testing::Combine(::testing::Range(0, 10),  // factory index
                       ::testing::Values(2, 5, 8, 16, 80)),
    [](const ::testing::TestParamInfo<::testing::tuple<int, int>>& info) {
        return allFactories()[static_cast<size_t>(
                                  ::testing::get<0>(info.param))]
                   .label +
               "_n" + std::to_string(::testing::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Backend equivalence: the word-parallel cores must be byte-identical to
// the scalar reference cores — same matchings from the same seeds — for
// every deterministic-given-the-draws algorithm (PIM consumes one PRNG
// draw per decision in the same order; iSLIP and fixed-order greedy draw
// nothing).
// ---------------------------------------------------------------------------

void
expectIdenticalMatchings(const Matching& a, const Matching& b,
                         const std::string& context)
{
    ASSERT_EQ(a.numInputs(), b.numInputs()) << context;
    EXPECT_EQ(a.size(), b.size()) << context;
    for (PortId i = 0; i < a.numInputs(); ++i)
        EXPECT_EQ(a.outputOf(i), b.outputOf(i)) << context << " input " << i;
}

/** Run `trials` random patterns through both matchers, expecting
    byte-identical matchings from both match() and matchInto(). */
void
expectBackendsAgree(Matcher& reference, Matcher& fast, int n, int trials,
                    uint64_t stream_seed)
{
    Xoshiro256 pattern_rng(stream_seed);
    Matching buf(n, n);
    for (int t = 0; t < trials; ++t) {
        double p = 0.05 + 0.9 * pattern_rng.nextDouble();
        auto req = RequestMatrix::bernoulli(n, p, pattern_rng);
        Matching ref = reference.match(req);
        // Alternate the fast entry points so both are pinned.
        if (t % 2 == 0) {
            fast.matchInto(req, buf);
            expectIdenticalMatchings(ref, buf,
                                     "n=" + std::to_string(n) + " t=" +
                                         std::to_string(t));
        } else {
            expectIdenticalMatchings(ref, fast.match(req),
                                     "n=" + std::to_string(n) + " t=" +
                                         std::to_string(t));
        }
    }
}

TEST(MatcherBackendEquivalence, PimRandomAccept)
{
    for (int n : {3, 16, 64, 65, 100, 256}) {
        PimMatcher ref(PimConfig{.iterations = 4, .seed = 11,
                                 .backend = MatcherBackend::Reference});
        PimMatcher fast(PimConfig{.iterations = 4, .seed = 11,
                                  .backend = MatcherBackend::WordParallel});
        expectBackendsAgree(ref, fast, n, n > 64 ? 40 : 150,
                            static_cast<uint64_t>(1000 + n));
    }
}

TEST(MatcherBackendEquivalence, PimRoundRobinAccept)
{
    for (int n : {5, 16, 64, 100}) {
        PimConfig cfg{.iterations = 4, .seed = 21};
        cfg.accept = AcceptPolicy::RoundRobin;
        cfg.backend = MatcherBackend::Reference;
        PimMatcher ref(cfg);
        cfg.backend = MatcherBackend::WordParallel;
        PimMatcher fast(cfg);
        expectBackendsAgree(ref, fast, n, 100,
                            static_cast<uint64_t>(2000 + n));
    }
}

TEST(MatcherBackendEquivalence, PimToCompletion)
{
    for (int n : {8, 64, 128}) {
        PimMatcher ref(PimConfig{.iterations = 0, .seed = 31,
                                 .backend = MatcherBackend::Reference});
        PimMatcher fast(PimConfig{.iterations = 0, .seed = 31,
                                  .backend = MatcherBackend::WordParallel});
        expectBackendsAgree(ref, fast, n, 60,
                            static_cast<uint64_t>(3000 + n));
    }
}

TEST(MatcherBackendEquivalence, Islip)
{
    for (int n : {3, 16, 64, 65, 100, 256}) {
        IslipMatcher ref(4, MatcherBackend::Reference);
        IslipMatcher fast(4, MatcherBackend::WordParallel);
        expectBackendsAgree(ref, fast, n, n > 64 ? 40 : 150,
                            static_cast<uint64_t>(4000 + n));
    }
}

TEST(MatcherBackendEquivalence, GreedyRandomized)
{
    for (int n : {3, 16, 64, 100, 256}) {
        SerialGreedyMatcher ref(true, 41, MatcherBackend::Reference);
        SerialGreedyMatcher fast(true, 41, MatcherBackend::WordParallel);
        expectBackendsAgree(ref, fast, n, n > 64 ? 40 : 150,
                            static_cast<uint64_t>(5000 + n));
    }
}

TEST(MatcherBackendEquivalence, GreedyFixedOrder)
{
    for (int n : {3, 16, 64, 100}) {
        SerialGreedyMatcher ref(false, 1, MatcherBackend::Reference);
        SerialGreedyMatcher fast(false, 1, MatcherBackend::WordParallel);
        expectBackendsAgree(ref, fast, n, 100,
                            static_cast<uint64_t>(6000 + n));
    }
}

TEST(MatcherBackendEquivalence, WordParallelRejectsUnsupportedConfigs)
{
    PimConfig cfg;
    cfg.output_capacity = 2;
    cfg.backend = MatcherBackend::WordParallel;
    PimMatcher pim(cfg);
    RequestMatrix req(4);
    req.set(0, 0, 1);
    EXPECT_THROW(pim.match(req), UsageError);

    // Auto silently falls back to the reference core instead.
    cfg.backend = MatcherBackend::Auto;
    PimMatcher pim_auto(cfg);
    EXPECT_EQ(pim_auto.match(req).size(), 1);
}

// ---------------------------------------------------------------------------
// Degenerate request matrices under port-liveness masks. RequestMatrix
// hides requests touching dead ports from both backend views (has() and
// the row/column bitmasks), so every matcher x backend combination must
// behave identically: never grant a dead port, and recover the hidden
// requests when the port revives. Exercised for the three core
// algorithms (PIM, iSLIP, serial greedy) on both cores.
// ---------------------------------------------------------------------------

std::vector<NamedFactory>
backendFactories(MatcherBackend backend)
{
    std::string tag =
        backend == MatcherBackend::Reference ? "_ref" : "_wp";
    std::vector<NamedFactory> fs;
    fs.push_back({"pim" + tag, [backend](int) {
                      return std::make_unique<PimMatcher>(PimConfig{
                          .iterations = 4, .seed = 17, .backend = backend});
                  }});
    fs.push_back({"islip" + tag, [backend](int) {
                      return std::make_unique<IslipMatcher>(4, backend);
                  }});
    fs.push_back({"greedy" + tag, [backend](int) {
                      return std::make_unique<SerialGreedyMatcher>(true, 23,
                                                                   backend);
                  }});
    return fs;
}

std::vector<NamedFactory>
allBackendFactories()
{
    auto fs = backendFactories(MatcherBackend::Reference);
    auto wp = backendFactories(MatcherBackend::WordParallel);
    fs.insert(fs.end(), wp.begin(), wp.end());
    return fs;
}

/** Fully populated n x n request matrix (every pair has one cell). */
RequestMatrix
fullMatrix(int n)
{
    RequestMatrix req(n);
    for (PortId i = 0; i < n; ++i)
        for (PortId j = 0; j < n; ++j)
            req.set(i, j, 1);
    return req;
}

TEST(MaskedMatcherConformance, AllPortsDeadYieldsEmptyMatch)
{
    for (int n : {4, 16, 80}) {
        RequestMatrix req = fullMatrix(n);
        for (PortId p = 0; p < n; ++p) {
            req.setInputLive(p, false);
            req.setOutputLive(p, false);
        }
        EXPECT_EQ(req.numEdges(), 0);
        for (const NamedFactory& f : allBackendFactories()) {
            auto m = f.make(n)->match(req);
            EXPECT_EQ(m.size(), 0) << f.label << " n=" << n;
        }
    }
}

TEST(MaskedMatcherConformance, SingleLivePairIsTheOnlyGrant)
{
    // Kill everything except input 2 / output 5: the sole visible
    // request (2,5) is the only legal grant, and every matcher must
    // find it (the visible graph is a single edge, so any maximal or
    // greedy pass takes it).
    for (int n : {8, 80}) {
        RequestMatrix req = fullMatrix(n);
        for (PortId p = 0; p < n; ++p) {
            if (p != 2)
                req.setInputLive(p, false);
            if (p != 5)
                req.setOutputLive(p, false);
        }
        EXPECT_EQ(req.numEdges(), 1);
        for (const NamedFactory& f : allBackendFactories()) {
            auto m = f.make(n)->match(req);
            ASSERT_EQ(m.size(), 1) << f.label << " n=" << n;
            EXPECT_EQ(m.outputOf(2), 5) << f.label << " n=" << n;
            EXPECT_TRUE(m.isLegalFor(req)) << f.label << " n=" << n;
        }
    }
}

TEST(MaskedMatcherConformance, MaskFlipMidSlotNeverGrantsDeadPorts)
{
    // Kill and revive ports between match() calls on the same matrix
    // and the same (stateful) matcher instances: each call must be
    // legal for the masks in force at that moment, and revival must
    // re-expose the hidden requests.
    for (int n : {8, 64}) {
        RequestMatrix req = fullMatrix(n);
        for (const NamedFactory& f : allBackendFactories()) {
            auto matcher = f.make(n);

            Matching before = matcher->match(req);
            EXPECT_TRUE(before.isLegalFor(req)) << f.label << " n=" << n;
            EXPECT_GE(before.size(), 1) << f.label << " n=" << n;
            EXPECT_EQ(req.numEdges(), n * n);

            req.setInputLive(1, false);
            req.setOutputLive(3, false);
            EXPECT_EQ(req.numEdges(), (n - 1) * (n - 1));
            Matching during = matcher->match(req);
            // isLegalFor consults has(), which is mask-aware, so this
            // already proves no dead port was granted; the explicit
            // checks below document the contract.
            EXPECT_TRUE(during.isLegalFor(req)) << f.label << " n=" << n;
            EXPECT_EQ(during.outputOf(1), kNoPort) << f.label;
            for (auto [i, j] : during.pairs())
                EXPECT_NE(j, 3) << f.label << " input " << i;
            EXPECT_GE(during.size(), 1) << f.label << " n=" << n;
            EXPECT_LE(during.size(), n - 1) << f.label << " n=" << n;

            req.setInputLive(1, true);
            req.setOutputLive(3, true);
            EXPECT_EQ(req.numEdges(), n * n);
            Matching after = matcher->match(req);
            EXPECT_TRUE(after.isLegalFor(req)) << f.label << " n=" << n;
            EXPECT_GE(after.size(), 1) << f.label << " n=" << n;
        }
    }
}

TEST(MaskedMatcherConformance, BackendsAgreeUnderRandomMasks)
{
    // The word-parallel cores consume the masked row/column bitmasks;
    // the reference cores consume masked has(). Same draws, same masks
    // -> byte-identical matchings, exactly as in the unmasked
    // equivalence suite.
    for (int n : {16, 100}) {
        auto refs = backendFactories(MatcherBackend::Reference);
        auto wps = backendFactories(MatcherBackend::WordParallel);
        ASSERT_EQ(refs.size(), wps.size());
        for (size_t k = 0; k < refs.size(); ++k) {
            auto ref = refs[k].make(n);
            auto wp = wps[k].make(n);
            Xoshiro256 rng(static_cast<uint64_t>(7000 + n + 31 * k));
            for (int t = 0; t < 40; ++t) {
                auto req = RequestMatrix::bernoulli(n, 0.4, rng);
                // Kill a random quarter of the ports.
                for (PortId p = 0; p < n; ++p) {
                    if (rng.nextDouble() < 0.25)
                        req.setInputLive(p, false);
                    if (rng.nextDouble() < 0.25)
                        req.setOutputLive(p, false);
                }
                Matching a = ref->match(req);
                Matching b = wp->match(req);
                EXPECT_TRUE(a.isLegalFor(req))
                    << refs[k].label << " n=" << n << " t=" << t;
                expectIdenticalMatchings(a, b,
                                         refs[k].label + " masked n=" +
                                             std::to_string(n) + " t=" +
                                             std::to_string(t));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// FastPIM (the standalone bitmask matcher) deliberately skips PRNG draws
// for singleton sets, so it is statistically — not byte — equivalent to
// PimMatcher: same legality/maximality guarantees and the same matching
// size distribution over many seeded trials.
// ---------------------------------------------------------------------------

TEST(FastPimParity, LegalAndMaximalManyTrials)
{
    for (int n : {16, 80, 128}) {
        FastPimMatcher fast(0, static_cast<uint64_t>(50 + n));
        Xoshiro256 rng(static_cast<uint64_t>(60 + n));
        for (int t = 0; t < 1000; ++t) {
            auto req = RequestMatrix::bernoulli(n, 0.3, rng);
            Matching m = fast.match(req);
            ASSERT_TRUE(m.isLegalFor(req)) << "n=" << n << " t=" << t;
            ASSERT_TRUE(m.isMaximalFor(req)) << "n=" << n << " t=" << t;
        }
    }
}

TEST(FastPimParity, MatchSizeDistributionTracksReference)
{
    // Identical request streams; compare the distribution of matching
    // sizes (mean and second moment) over >= 1000 trials at several N.
    for (int n : {16, 48, 80}) {
        constexpr int kTrials = 1500;
        PimMatcher ref(PimConfig{.iterations = 4,
                                 .seed = static_cast<uint64_t>(70 + n)});
        FastPimMatcher fast(4, static_cast<uint64_t>(80 + n));
        Xoshiro256 rng_a(static_cast<uint64_t>(90 + n));
        Xoshiro256 rng_b(static_cast<uint64_t>(90 + n));
        double ref_sum = 0, ref_sq = 0, fast_sum = 0, fast_sq = 0;
        for (int t = 0; t < kTrials; ++t) {
            auto req_a = RequestMatrix::bernoulli(n, 0.25, rng_a);
            auto req_b = RequestMatrix::bernoulli(n, 0.25, rng_b);
            double r = ref.match(req_a).size();
            double f = fast.match(req_b).size();
            ref_sum += r;
            ref_sq += r * r;
            fast_sum += f;
            fast_sq += f * f;
        }
        double ref_mean = ref_sum / kTrials;
        double fast_mean = fast_sum / kTrials;
        EXPECT_NEAR(fast_mean, ref_mean, 0.05 * n) << "n=" << n;
        double ref_var = ref_sq / kTrials - ref_mean * ref_mean;
        double fast_var = fast_sq / kTrials - fast_mean * fast_mean;
        EXPECT_NEAR(std::sqrt(fast_var + 1), std::sqrt(ref_var + 1),
                    0.5)
            << "n=" << n;
    }
}

}  // namespace
}  // namespace an2
