// Conformance property suite: every scheduling algorithm in an2sim must
// satisfy the same contract — legal matchings, respected capacities,
// graceful handling of degenerate patterns — across a common sweep.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "an2/matching/fill_in.h"
#include "an2/matching/hopcroft_karp.h"
#include "an2/matching/islip.h"
#include "an2/matching/pim.h"
#include "an2/matching/pim_fast.h"
#include "an2/matching/serial_greedy.h"
#include "an2/matching/statistical.h"

namespace an2 {
namespace {

using MatcherFactory = std::function<std::unique_ptr<Matcher>(int n)>;

struct NamedFactory
{
    std::string label;
    MatcherFactory make;
};

std::vector<NamedFactory>
allFactories()
{
    std::vector<NamedFactory> fs;
    fs.push_back({"pim4", [](int) {
                      return std::make_unique<PimMatcher>(
                          PimConfig{.iterations = 4, .seed = 1});
                  }});
    fs.push_back({"pim_complete", [](int) {
                      return std::make_unique<PimMatcher>(
                          PimConfig{.iterations = 0, .seed = 2});
                  }});
    fs.push_back({"pim_rr", [](int) {
                      PimConfig cfg;
                      cfg.iterations = 4;
                      cfg.accept = AcceptPolicy::RoundRobin;
                      cfg.seed = 3;
                      return std::make_unique<PimMatcher>(cfg);
                  }});
    fs.push_back({"islip", [](int) {
                      return std::make_unique<IslipMatcher>(4);
                  }});
    fs.push_back({"greedy_random", [](int) {
                      return std::make_unique<SerialGreedyMatcher>(true, 4);
                  }});
    fs.push_back({"greedy_fixed", [](int) {
                      return std::make_unique<SerialGreedyMatcher>(false);
                  }});
    fs.push_back({"hopcroft_karp", [](int) {
                      return std::make_unique<HopcroftKarpMatcher>();
                  }});
    fs.push_back({"statistical", [](int n) {
                      Matrix<int> alloc(n, n, 1000 / n);
                      StatisticalConfig cfg;
                      cfg.units = 1000;
                      cfg.rounds = 2;
                      cfg.seed = 5;
                      return std::make_unique<StatisticalMatcher>(alloc,
                                                                  cfg);
                  }});
    fs.push_back({"fast_pim", [](int) {
                      return std::make_unique<FastPimMatcher>(4, 6);
                  }});
    fs.push_back({"stat_plus_pim", [](int n) {
                      Matrix<int> alloc(n, n, 1000 / n);
                      StatisticalConfig scfg;
                      scfg.units = 1000;
                      scfg.seed = 7;
                      PimConfig pcfg;
                      pcfg.iterations = 4;
                      pcfg.seed = 8;
                      return std::make_unique<FillInMatcher>(
                          std::make_unique<StatisticalMatcher>(alloc, scfg),
                          std::make_unique<PimMatcher>(pcfg));
                  }});
    return fs;
}

class MatcherConformanceTest
    : public ::testing::TestWithParam<::testing::tuple<int, int>>
{
  protected:
    int factoryIndex() const { return ::testing::get<0>(GetParam()); }
    int size() const { return ::testing::get<1>(GetParam()); }

    std::unique_ptr<Matcher>
    makeMatcher()
    {
        return allFactories()[static_cast<size_t>(factoryIndex())].make(
            size());
    }
};

/** Check basic sanity of a matching against its request matrix. */
void
expectWellFormed(const Matching& m, const RequestMatrix& req)
{
    EXPECT_TRUE(m.isLegalFor(req));
    std::vector<int> out_used(static_cast<size_t>(req.numOutputs()), 0);
    for (auto [i, j] : m.pairs()) {
        EXPECT_GE(i, 0);
        EXPECT_LT(i, req.numInputs());
        ++out_used[static_cast<size_t>(j)];
    }
    for (int u : out_used)
        EXPECT_LE(u, 1);
}

TEST_P(MatcherConformanceTest, LegalAcrossDensities)
{
    auto matcher = makeMatcher();
    Xoshiro256 rng(static_cast<uint64_t>(7 * size() + factoryIndex()));
    for (double p : {0.05, 0.3, 0.7, 1.0}) {
        for (int t = 0; t < 10; ++t) {
            auto req = RequestMatrix::bernoulli(size(), p, rng);
            expectWellFormed(matcher->match(req), req);
        }
    }
}

TEST_P(MatcherConformanceTest, EmptyRequestsYieldEmptyMatch)
{
    auto matcher = makeMatcher();
    RequestMatrix req(size());
    EXPECT_EQ(matcher->match(req).size(), 0);
}

TEST_P(MatcherConformanceTest, PermutationPatternHandled)
{
    auto matcher = makeMatcher();
    RequestMatrix req(size());
    for (PortId i = 0; i < size(); ++i)
        req.set(i, (i + 1) % size(), 1);
    Matching m = matcher->match(req);
    expectWellFormed(m, req);
    // All non-statistical matchers must find the full permutation; the
    // statistical matcher intentionally idles ~28% of slots.
    std::string label = allFactories()[static_cast<size_t>(factoryIndex())]
                            .label;
    if (label != "statistical")
        EXPECT_EQ(m.size(), size());
}

TEST_P(MatcherConformanceTest, SingleColumnContention)
{
    // Everyone wants output 0: exactly one winner per slot.
    auto matcher = makeMatcher();
    RequestMatrix req(size());
    for (PortId i = 0; i < size(); ++i)
        req.set(i, 0, 1);
    for (int t = 0; t < 20; ++t) {
        Matching m = matcher->match(req);
        expectWellFormed(m, req);
        EXPECT_LE(m.size(), 1);
    }
}

TEST_P(MatcherConformanceTest, SingleRowFanOut)
{
    // One input wants everything: at most one accept per slot.
    auto matcher = makeMatcher();
    RequestMatrix req(size());
    for (PortId j = 0; j < size(); ++j)
        req.set(0, j, 1);
    for (int t = 0; t < 20; ++t) {
        Matching m = matcher->match(req);
        expectWellFormed(m, req);
        EXPECT_LE(m.size(), 1);
    }
}

TEST_P(MatcherConformanceTest, RepeatedCallsStayLegal)
{
    // State carried across slots (pointers, PRNG) must never corrupt
    // legality, including when the pattern changes every slot.
    auto matcher = makeMatcher();
    Xoshiro256 rng(static_cast<uint64_t>(13 + factoryIndex()));
    for (int t = 0; t < 200; ++t) {
        auto req = RequestMatrix::bernoulli(size(),
                                            0.1 + 0.8 * rng.nextDouble(),
                                            rng);
        expectWellFormed(matcher->match(req), req);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllMatchers, MatcherConformanceTest,
    ::testing::Combine(::testing::Range(0, 10),  // factory index
                       ::testing::Values(2, 5, 8, 16)),
    [](const ::testing::TestParamInfo<::testing::tuple<int, int>>& info) {
        return allFactories()[static_cast<size_t>(
                                  ::testing::get<0>(info.param))]
                   .label +
               "_n" + std::to_string(::testing::get<1>(info.param));
    });

}  // namespace
}  // namespace an2
