// Tests for the workload generators (an2/sim/traffic.h).
#include "an2/sim/traffic.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

namespace an2 {
namespace {

/** Run a generator for `slots` slots and return all cells. */
std::vector<Cell>
collect(TrafficGenerator& gen, SlotTime slots)
{
    std::vector<Cell> all;
    for (SlotTime s = 0; s < slots; ++s)
        gen.generate(s, all);
    return all;
}

TEST(UniformTrafficTest, LoadMatchesTarget)
{
    UniformTraffic gen(16, 0.6, 1);
    auto cells = collect(gen, 5000);
    double rate = static_cast<double>(cells.size()) / (5000.0 * 16);
    EXPECT_NEAR(rate, 0.6, 0.01);
}

TEST(UniformTrafficTest, DestinationsUniform)
{
    UniformTraffic gen(8, 1.0, 2);
    auto cells = collect(gen, 4000);
    std::vector<int> per_dest(8, 0);
    for (const Cell& c : cells)
        ++per_dest[static_cast<size_t>(c.output)];
    for (int d : per_dest)
        EXPECT_NEAR(d / static_cast<double>(cells.size()), 0.125, 0.01);
}

TEST(UniformTrafficTest, AtMostOneCellPerInputPerSlot)
{
    UniformTraffic gen(4, 1.0, 3);
    std::vector<Cell> slot_cells;
    for (SlotTime s = 0; s < 100; ++s) {
        slot_cells.clear();
        gen.generate(s, slot_cells);
        EXPECT_EQ(slot_cells.size(), 4u);  // load 1: exactly one each
        std::vector<bool> seen(4, false);
        for (const Cell& c : slot_cells) {
            EXPECT_FALSE(seen[static_cast<size_t>(c.input)]);
            seen[static_cast<size_t>(c.input)] = true;
            EXPECT_EQ(c.inject_slot, s);
        }
    }
}

TEST(UniformTrafficTest, PerFlowSequenceNumbersIncrement)
{
    UniformTraffic gen(4, 1.0, 4);
    auto cells = collect(gen, 2000);
    std::map<FlowId, int64_t> next;
    for (const Cell& c : cells) {
        auto [it, inserted] = next.try_emplace(c.flow, 0);
        EXPECT_EQ(c.seq, it->second) << "flow " << c.flow;
        ++it->second;
    }
}

TEST(UniformTrafficTest, FlowsMatchConnections)
{
    UniformTraffic gen(4, 1.0, 5);
    auto cells = collect(gen, 500);
    for (const Cell& c : cells) {
        const Flow& f = gen.flows().flow(c.flow);
        EXPECT_EQ(f.input, c.input);
        EXPECT_EQ(f.output, c.output);
        EXPECT_EQ(f.cls, TrafficClass::VBR);
    }
}

TEST(UniformTrafficTest, ZeroLoadGeneratesNothing)
{
    UniformTraffic gen(4, 0.0, 6);
    EXPECT_TRUE(collect(gen, 100).empty());
    EXPECT_EQ(gen.cellsInjected(), 0);
}

TEST(UniformTrafficTest, InvalidLoadRejected)
{
    EXPECT_THROW(UniformTraffic(4, 1.5, 1), UsageError);
    EXPECT_THROW(UniformTraffic(4, -0.1, 1), UsageError);
}

TEST(ClientServerTrafficTest, ServerLinkLoadCalibrated)
{
    constexpr int kN = 16;
    constexpr int kServers = 4;
    ClientServerTraffic gen(kN, kServers, 0.8, 7);
    auto cells = collect(gen, 20000);
    std::vector<int64_t> per_out(kN, 0);
    for (const Cell& c : cells)
        ++per_out[static_cast<size_t>(c.output)];
    for (int j = 0; j < kServers; ++j) {
        double load = per_out[static_cast<size_t>(j)] / 20000.0;
        EXPECT_NEAR(load, 0.8, 0.03) << "server " << j;
    }
    // Clients see far less traffic than servers.
    for (int j = kServers; j < kN; ++j) {
        double load = per_out[static_cast<size_t>(j)] / 20000.0;
        EXPECT_LT(load, 0.5) << "client " << j;
    }
}

TEST(ClientServerTrafficTest, ClientClientTrafficSuppressed)
{
    constexpr int kN = 16;
    constexpr int kServers = 4;
    ClientServerTraffic gen(kN, kServers, 0.9, 8, 0.05);
    auto cells = collect(gen, 30000);
    int64_t client_client = 0;
    int64_t client_server = 0;
    for (const Cell& c : cells) {
        if (c.input >= kServers) {
            if (c.output >= kServers)
                ++client_client;
            else
                ++client_server;
        }
    }
    // Weights: each client splits traffic 4*1 : 11*0.05 between servers
    // and other clients, so client-client is ~12% of client traffic.
    double frac = static_cast<double>(client_client) /
                  static_cast<double>(client_client + client_server);
    EXPECT_NEAR(frac, 0.55 / 4.55, 0.02);
}

TEST(ClientServerTrafficTest, NoSelfTraffic)
{
    ClientServerTraffic gen(8, 2, 0.5, 9);
    for (const Cell& c : collect(gen, 5000))
        EXPECT_NE(c.input, c.output);
}

TEST(ClientServerTrafficTest, UniformRatioFullLoadIsBoundary)
{
    // With ratio 1.0 the workload degenerates to uniform(no-self) and a
    // server load of 1.0 calibrates to per-input rate exactly 1.0.
    ClientServerTraffic gen(4, 2, 1.0, 1, 1.0);
    EXPECT_NEAR(gen.arrivalRate(), 1.0, 1e-9);
}

TEST(ClientServerTrafficTest, InvalidConfigRejected)
{
    EXPECT_THROW(ClientServerTraffic(8, 0, 0.5, 1), UsageError);
    EXPECT_THROW(ClientServerTraffic(8, 8, 0.5, 1), UsageError);
}

TEST(PeriodicBurstTrafficTest, AllInputsTargetRotatingOutput)
{
    PeriodicBurstTraffic gen(4, 1.0, 10, /*burst=*/1);
    std::vector<Cell> cells;
    for (SlotTime s = 0; s < 40; ++s) {
        cells.clear();
        gen.generate(s, cells);
        EXPECT_EQ(cells.size(), 4u);
        for (const Cell& c : cells)
            EXPECT_EQ(c.output, static_cast<PortId>(s % 4));
    }
}

TEST(PeriodicBurstTrafficTest, BurstLengthControlsRotation)
{
    PeriodicBurstTraffic gen(4, 1.0, 10, /*burst=*/8);
    std::vector<Cell> cells;
    for (SlotTime s = 0; s < 64; ++s) {
        cells.clear();
        gen.generate(s, cells);
        for (const Cell& c : cells)
            EXPECT_EQ(c.output, static_cast<PortId>((s / 8) % 4));
    }
}

TEST(PeriodicBurstTrafficTest, DefaultBurstIsNSquared)
{
    PeriodicBurstTraffic gen(4, 1.0, 10);
    std::vector<Cell> cells;
    gen.generate(15, cells);  // still within the first burst of 16
    for (const Cell& c : cells)
        EXPECT_EQ(c.output, 0);
}

TEST(PeriodicBurstTrafficTest, LoadScalesArrivals)
{
    PeriodicBurstTraffic gen(8, 0.25, 11);
    auto cells = collect(gen, 8000);
    EXPECT_NEAR(static_cast<double>(cells.size()) / (8000 * 8), 0.25, 0.01);
}

TEST(HotspotTrafficTest, FractionReachesHotspot)
{
    HotspotTraffic gen(8, 1.0, 3, 0.5, 12);
    auto cells = collect(gen, 10000);
    int64_t hot = 0;
    for (const Cell& c : cells)
        if (c.output == 3)
            ++hot;
    // 0.5 directly + 0.5 * 1/8 uniform spillover = 0.5625.
    EXPECT_NEAR(static_cast<double>(hot) / cells.size(), 0.5625, 0.01);
}

TEST(BurstyTrafficTest, LongRunLoadMatches)
{
    BurstyTraffic gen(8, 0.4, 10.0, 13);
    auto cells = collect(gen, 60000);
    EXPECT_NEAR(static_cast<double>(cells.size()) / (60000 * 8), 0.4, 0.02);
}

TEST(BurstyTrafficTest, CellsArriveInBurstsToOneDestination)
{
    BurstyTraffic gen(2, 0.3, 20.0, 14);
    auto cells = collect(gen, 40000);
    // Measure mean run length of same-destination consecutive cells per
    // input; with mean burst 20 it should be well above 5.
    std::map<PortId, std::pair<PortId, SlotTime>> last;  // input -> (dest, slot)
    std::map<PortId, int64_t> runs;
    std::map<PortId, int64_t> cells_per_input;
    for (const Cell& c : cells) {
        ++cells_per_input[c.input];
        auto it = last.find(c.input);
        bool continues = it != last.end() &&
                         it->second.first == c.output &&
                         it->second.second == c.inject_slot - 1;
        if (!continues)
            ++runs[c.input];
        last[c.input] = {c.output, c.inject_slot};
    }
    for (auto [input, count] : cells_per_input) {
        double mean_run =
            static_cast<double>(count) / static_cast<double>(runs[input]);
        EXPECT_GT(mean_run, 5.0) << "input " << input;
    }
}

TEST(BurstyTrafficTest, InvalidConfigRejected)
{
    EXPECT_THROW(BurstyTraffic(4, 1.0, 10.0, 1), UsageError);
    EXPECT_THROW(BurstyTraffic(4, 0.5, 0.5, 1), UsageError);
}

TEST(TraceTrafficTest, ReplaysRecordsAtTheirSlots)
{
    TraceTraffic gen(4, {{5, 0, 1}, {2, 3, 2}, {5, 1, 0}});
    std::vector<Cell> cells;
    for (SlotTime s = 0; s < 10; ++s)
        gen.generate(s, cells);
    ASSERT_EQ(cells.size(), 3u);
    EXPECT_EQ(cells[0].inject_slot, 2);
    EXPECT_EQ(cells[0].input, 3);
    EXPECT_EQ(cells[1].inject_slot, 5);
    EXPECT_EQ(cells[1].input, 0);
    EXPECT_EQ(cells[2].inject_slot, 5);
    EXPECT_EQ(cells[2].input, 1);
    EXPECT_EQ(gen.records(), 3);
}

TEST(TraceTrafficTest, SequenceNumbersPerConnection)
{
    TraceTraffic gen(2, {{0, 0, 1}, {1, 0, 1}, {2, 0, 0}});
    std::vector<Cell> cells;
    for (SlotTime s = 0; s < 3; ++s)
        gen.generate(s, cells);
    ASSERT_EQ(cells.size(), 3u);
    EXPECT_EQ(cells[0].seq, 0);
    EXPECT_EQ(cells[1].seq, 1);  // same connection (0,1)
    EXPECT_EQ(cells[2].seq, 0);  // new connection (0,0)
}

TEST(TraceTrafficTest, ValidatesRecords)
{
    EXPECT_THROW(TraceTraffic(2, {{0, 5, 0}}), UsageError);
    EXPECT_THROW(TraceTraffic(2, {{0, 0, 5}}), UsageError);
    EXPECT_THROW(TraceTraffic(2, {{-1, 0, 0}}), UsageError);
    // Two cells on one input in one slot: the link can't carry both.
    EXPECT_THROW(TraceTraffic(2, {{3, 1, 0}, {3, 1, 1}}), UsageError);
}

TEST(TraceTrafficTest, ParsesCsv)
{
    std::istringstream csv(
        "# slot,input,output\n"
        "0,0,3\n"
        "\n"
        "2,1,2\n");
    TraceTraffic gen = TraceTraffic::fromCsv(4, csv);
    EXPECT_EQ(gen.records(), 2);
    std::vector<Cell> cells;
    for (SlotTime s = 0; s < 3; ++s)
        gen.generate(s, cells);
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells[1].output, 2);
}

TEST(TraceTrafficTest, RejectsMalformedCsv)
{
    std::istringstream csv("0,zero,3\n");
    EXPECT_THROW(TraceTraffic::fromCsv(4, csv), UsageError);
}

TEST(TraceTrafficTest, RequiresMonotoneDrivingSlots)
{
    TraceTraffic gen(2, {{0, 0, 0}});
    std::vector<Cell> cells;
    gen.generate(0, cells);
    EXPECT_THROW(gen.generate(0, cells), UsageError);
}

}  // namespace
}  // namespace an2
