// Tests for the Matching result type (an2/matching/matching.h).
#include "an2/matching/matching.h"

#include <gtest/gtest.h>

namespace an2 {
namespace {

TEST(MatchingTest, StartsEmpty)
{
    Matching m(4);
    EXPECT_EQ(m.size(), 0);
    for (PortId i = 0; i < 4; ++i) {
        EXPECT_EQ(m.outputOf(i), kNoPort);
        EXPECT_FALSE(m.isInputMatched(i));
        EXPECT_EQ(m.outputDegree(i), 0);
    }
}

TEST(MatchingTest, AddAndQuery)
{
    Matching m(4);
    m.add(1, 2);
    EXPECT_EQ(m.size(), 1);
    EXPECT_EQ(m.outputOf(1), 2);
    EXPECT_EQ(m.inputOf(2), 1);
    EXPECT_TRUE(m.isInputMatched(1));
    EXPECT_TRUE(m.isOutputSaturated(2));
    EXPECT_FALSE(m.isOutputSaturated(0));
}

TEST(MatchingTest, DoubleMatchInputPanics)
{
    Matching m(4);
    m.add(0, 0);
    EXPECT_THROW(m.add(0, 1), InternalError);
}

TEST(MatchingTest, OutputOverCapacityPanics)
{
    Matching m(4);
    m.add(0, 2);
    EXPECT_THROW(m.add(1, 2), InternalError);
}

TEST(MatchingTest, RemoveInput)
{
    Matching m(4);
    m.add(0, 3);
    m.removeInput(0);
    EXPECT_EQ(m.size(), 0);
    EXPECT_FALSE(m.isInputMatched(0));
    EXPECT_FALSE(m.isOutputSaturated(3));
    m.add(1, 3);  // slot reusable
    EXPECT_EQ(m.inputOf(3), 1);
}

TEST(MatchingTest, RemoveUnmatchedPanics)
{
    Matching m(2);
    EXPECT_THROW(m.removeInput(0), InternalError);
}

TEST(MatchingTest, OutputCapacityAllowsMultipleInputs)
{
    Matching m(4, 4, 2);
    m.add(0, 1);
    m.add(2, 1);
    EXPECT_EQ(m.outputDegree(1), 2);
    EXPECT_TRUE(m.isOutputSaturated(1));
    EXPECT_THROW(m.add(3, 1), InternalError);
    ASSERT_EQ(m.inputsOf(1).size(), 2u);
}

TEST(MatchingTest, PairsInInputOrder)
{
    Matching m(4);
    m.add(3, 0);
    m.add(1, 2);
    auto pairs = m.pairs();
    ASSERT_EQ(pairs.size(), 2u);
    EXPECT_EQ(pairs[0], std::make_pair(1, 2));
    EXPECT_EQ(pairs[1], std::make_pair(3, 0));
}

TEST(MatchingTest, LegalityAgainstRequests)
{
    RequestMatrix req(3);
    req.set(0, 1, 1);
    req.set(2, 2, 1);
    Matching m(3);
    m.add(0, 1);
    EXPECT_TRUE(m.isLegalFor(req));
    m.add(1, 0);  // no request from 1 to 0
    EXPECT_FALSE(m.isLegalFor(req));
}

TEST(MatchingTest, LegalityRequiresMatchingDimensions)
{
    RequestMatrix req(3);
    Matching m(4);
    EXPECT_FALSE(m.isLegalFor(req));
}

TEST(MatchingTest, MaximalityDetection)
{
    RequestMatrix req(3);
    req.set(0, 0, 1);
    req.set(0, 1, 1);
    req.set(1, 1, 1);
    Matching m(3);
    m.add(0, 0);
    EXPECT_FALSE(m.isMaximalFor(req));  // (1,1) still addable
    m.add(1, 1);
    EXPECT_TRUE(m.isMaximalFor(req));
}

TEST(MatchingTest, EmptyMatchingMaximalForEmptyRequests)
{
    RequestMatrix req(4);
    Matching m(4);
    EXPECT_TRUE(m.isMaximalFor(req));
}

TEST(MatchingTest, CapacityAffectsMaximality)
{
    RequestMatrix req(2);
    req.set(0, 0, 1);
    req.set(1, 0, 1);
    Matching m1(2, 2, 1);
    m1.add(0, 0);
    EXPECT_TRUE(m1.isMaximalFor(req));  // output 0 saturated at capacity 1
    Matching m2(2, 2, 2);
    m2.add(0, 0);
    EXPECT_FALSE(m2.isMaximalFor(req));  // capacity 2: (1,0) addable
}

TEST(MatchingTest, RejectsBadConstruction)
{
    EXPECT_THROW(Matching(0), UsageError);
    EXPECT_THROW(Matching(2, 2, 0), UsageError);
}

TEST(MatchingTest, RangeChecksOnAdd)
{
    Matching m(2);
    EXPECT_THROW(m.add(-1, 0), UsageError);
    EXPECT_THROW(m.add(0, 2), UsageError);
}

}  // namespace
}  // namespace an2
