// Tests for Parallel Iterative Matching (an2/matching/pim.h), including
// the Appendix A iteration-count properties.
#include "an2/matching/pim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "an2/matching/hopcroft_karp.h"

namespace an2 {
namespace {

TEST(PimTest, EmptyRequestsGiveEmptyMatch)
{
    PimMatcher pim;
    RequestMatrix req(8);
    Matching m = pim.match(req);
    EXPECT_EQ(m.size(), 0);
}

TEST(PimTest, SingleRequestMatchedInOneIteration)
{
    PimMatcher pim(PimConfig{.iterations = 1});
    RequestMatrix req(8);
    req.set(3, 5, 1);
    Matching m = pim.match(req);
    EXPECT_EQ(m.size(), 1);
    EXPECT_EQ(m.outputOf(3), 5);
}

TEST(PimTest, PermutationRequestsFullyMatchedInOneIteration)
{
    // Each output has exactly one requester: no contention anywhere.
    PimMatcher pim(PimConfig{.iterations = 1});
    RequestMatrix req(8);
    for (PortId i = 0; i < 8; ++i)
        req.set(i, (i + 3) % 8, 1);
    Matching m = pim.match(req);
    EXPECT_EQ(m.size(), 8);
}

TEST(PimTest, RunToCompletionIsMaximal)
{
    PimMatcher pim(PimConfig{.iterations = 0, .seed = 9});
    Xoshiro256 rng(4);
    for (int trial = 0; trial < 50; ++trial) {
        auto req = RequestMatrix::bernoulli(16, 0.4, rng);
        Matching m = pim.match(req);
        EXPECT_TRUE(m.isLegalFor(req));
        EXPECT_TRUE(m.isMaximalFor(req));
    }
}

TEST(PimTest, DeterministicForSameSeed)
{
    Xoshiro256 rng(5);
    auto req = RequestMatrix::bernoulli(16, 0.5, rng);
    PimMatcher a(PimConfig{.seed = 77});
    PimMatcher b(PimConfig{.seed = 77});
    Matching ma = a.match(req);
    Matching mb = b.match(req);
    for (PortId i = 0; i < 16; ++i)
        EXPECT_EQ(ma.outputOf(i), mb.outputOf(i));
}

TEST(PimTest, DetailedStatsMonotoneAndConsistent)
{
    Xoshiro256 rng(6);
    auto req = RequestMatrix::bernoulli(16, 1.0, rng);
    PimMatcher pim(PimConfig{.seed = 3});
    PimRunStats stats;
    Matching m = pim.matchDetailed(req, stats, 0);
    ASSERT_GT(stats.iterations_run, 0);
    ASSERT_EQ(static_cast<int>(stats.matches_after_iteration.size()),
              stats.iterations_run);
    for (size_t k = 1; k < stats.matches_after_iteration.size(); ++k)
        EXPECT_GE(stats.matches_after_iteration[k],
                  stats.matches_after_iteration[k - 1]);
    EXPECT_EQ(stats.matches_after_iteration.back(), m.size());
    EXPECT_TRUE(stats.reached_maximal);
}

TEST(PimTest, EarlyExitOncePairingsExhausted)
{
    // A single request can't need more than ~2 iterations even if 16 are
    // allowed (the second iteration adds nothing and stops the loop).
    PimMatcher pim(PimConfig{.iterations = 16});
    RequestMatrix req(4);
    req.set(0, 0, 1);
    PimRunStats stats;
    pim.matchDetailed(req, stats, 16);
    EXPECT_LE(stats.iterations_run, 2);
}

TEST(PimTest, AppendixAWorstCasePattern)
{
    // All outputs grant to inputs that all request everything: the
    // adversarial full matrix. Run to completion must still produce the
    // full (maximum) match, since the request graph is complete.
    PimMatcher pim(PimConfig{.iterations = 0, .seed = 21});
    RequestMatrix req(16);
    for (PortId i = 0; i < 16; ++i)
        for (PortId j = 0; j < 16; ++j)
            req.set(i, j, 1);
    Matching m = pim.match(req);
    EXPECT_EQ(m.size(), 16);
}

TEST(PimTest, AverageIterationsWithinAppendixABound)
{
    // Appendix A: E[iterations to maximal] <= log2(N) + 4/3. Measure the
    // empirical mean over many dense patterns and allow a small slack for
    // sampling noise (the bound itself is loose in practice).
    for (int n : {4, 8, 16, 32}) {
        PimMatcher pim(PimConfig{.iterations = 0, .seed = 100 + n});
        Xoshiro256 rng(static_cast<uint64_t>(n));
        double total_iters = 0.0;
        constexpr int kTrials = 300;
        for (int t = 0; t < kTrials; ++t) {
            auto req = RequestMatrix::bernoulli(n, 1.0, rng);
            PimRunStats stats;
            pim.matchDetailed(req, stats, 0);
            // iterations_run includes the final no-progress round; the
            // match itself completed one earlier.
            total_iters += stats.iterations_run - 1;
        }
        double avg = total_iters / kTrials;
        EXPECT_LE(avg, std::log2(n) + 4.0 / 3.0 + 0.5)
            << "N=" << n << " avg=" << avg;
    }
}

TEST(PimTest, FourIterationsNearlyAlwaysMaximalAt16)
{
    // Table 1's headline: at N=16, 4 iterations find essentially every
    // match that running to completion finds.
    PimMatcher pim(PimConfig{.iterations = 4, .seed = 8});
    Xoshiro256 rng(9);
    int maximal = 0;
    constexpr int kTrials = 500;
    for (int t = 0; t < kTrials; ++t) {
        auto req = RequestMatrix::bernoulli(16, 0.5, rng);
        Matching m = pim.match(req);
        if (m.isMaximalFor(req))
            ++maximal;
    }
    EXPECT_GE(maximal, kTrials * 97 / 100);
}

TEST(PimTest, MaximalAtLeastHalfOfMaximum)
{
    // Classic bound: any maximal matching is >= 1/2 the maximum matching.
    PimMatcher pim(PimConfig{.iterations = 0, .seed = 10});
    Xoshiro256 rng(11);
    for (int t = 0; t < 100; ++t) {
        auto req = RequestMatrix::bernoulli(12, 0.3, rng);
        int pim_size = pim.match(req).size();
        int max_size = maximumMatchingSize(req);
        EXPECT_GE(2 * pim_size, max_size);
        EXPECT_LE(pim_size, max_size);
    }
}

TEST(PimTest, NoStarvationUnderPersistentContention)
{
    // The Figure 2 scenario §3.4 uses to show maximum matching starves:
    // input 0 requests outputs 1 and 2; input 1 requests output 1 only.
    // Over many slots PIM must serve connection (0,1) sometimes and both
    // (0,*) and (1,1) regularly.
    PimMatcher pim(PimConfig{.iterations = 4, .seed = 12});
    RequestMatrix req(3);
    req.set(0, 1, 1);
    req.set(0, 2, 1);
    req.set(1, 1, 1);
    int served_01 = 0;
    int served_11 = 0;
    int served_02 = 0;
    for (int slot = 0; slot < 4000; ++slot) {
        Matching m = pim.match(req);
        if (m.outputOf(0) == 1)
            ++served_01;
        if (m.outputOf(0) == 2)
            ++served_02;
        if (m.outputOf(1) == 1)
            ++served_11;
    }
    EXPECT_GT(served_01, 100);
    EXPECT_GT(served_02, 1000);
    EXPECT_GT(served_11, 1000);
}

TEST(PimTest, RoundRobinAcceptCyclesThroughOutputs)
{
    PimConfig cfg;
    cfg.iterations = 1;
    cfg.accept = AcceptPolicy::RoundRobin;
    PimMatcher pim(cfg);
    // Input 0 is the only requester of outputs 0..3; all grant every
    // slot, so round-robin accept must visit each output equally.
    RequestMatrix req(4);
    for (PortId j = 0; j < 4; ++j)
        req.set(0, j, 1);
    std::vector<int> served(4, 0);
    for (int slot = 0; slot < 400; ++slot) {
        Matching m = pim.match(req);
        ASSERT_NE(m.outputOf(0), kNoPort);
        ++served[static_cast<size_t>(m.outputOf(0))];
    }
    for (int j = 0; j < 4; ++j)
        EXPECT_EQ(served[static_cast<size_t>(j)], 100);
}

TEST(PimTest, OutputCapacityGrantsUpToK)
{
    PimConfig cfg;
    cfg.iterations = 0;
    cfg.output_capacity = 3;
    PimMatcher pim(cfg);
    RequestMatrix req(4);
    for (PortId i = 0; i < 4; ++i)
        req.set(i, 0, 1);  // everyone wants output 0
    Matching m = pim.match(req);
    EXPECT_EQ(m.size(), 3);
    EXPECT_EQ(m.outputDegree(0), 3);
    EXPECT_TRUE(m.isMaximalFor(req));
}

// Capacity sweep: the replicated-fabric generalization must respect the
// configured grant limit and reach capacity-aware maximality for every k.
class PimCapacityTest : public ::testing::TestWithParam<int>
{
};

TEST_P(PimCapacityTest, RespectsOutputCapacityAndMaximality)
{
    int k = GetParam();
    PimConfig cfg;
    cfg.iterations = 0;
    cfg.output_capacity = k;
    cfg.seed = static_cast<uint64_t>(100 + k);
    PimMatcher pim(cfg);
    Xoshiro256 rng(static_cast<uint64_t>(50 + k));
    for (int t = 0; t < 40; ++t) {
        auto req = RequestMatrix::bernoulli(12, 0.6, rng);
        Matching m = pim.match(req);
        EXPECT_TRUE(m.isLegalFor(req));
        EXPECT_TRUE(m.isMaximalFor(req));
        for (PortId j = 0; j < 12; ++j)
            EXPECT_LE(m.outputDegree(j), k);
        // Each input still transmits at most once.
        for (PortId i = 0; i < 12; ++i)
            EXPECT_LE(m.outputOf(i) == kNoPort ? 0 : 1, 1);
    }
}

TEST_P(PimCapacityTest, HotColumnAbsorbsUpToK)
{
    int k = GetParam();
    PimConfig cfg;
    cfg.iterations = 0;
    cfg.output_capacity = k;
    cfg.seed = static_cast<uint64_t>(200 + k);
    PimMatcher pim(cfg);
    RequestMatrix req(8);
    for (PortId i = 0; i < 8; ++i)
        req.set(i, 0, 1);
    Matching m = pim.match(req);
    EXPECT_EQ(m.size(), std::min(8, k));
    EXPECT_EQ(m.outputDegree(0), std::min(8, k));
}

INSTANTIATE_TEST_SUITE_P(CapacitySweep, PimCapacityTest,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(PimTest, WeakPrngStillFindsMaximalMatches)
{
    // §3.3: completion is "relatively insensitive to the technique used
    // to approximate randomness".
    PimMatcher pim(PimConfig{.iterations = 0},
                   std::make_unique<WeakLcg>(123));
    Xoshiro256 rng(13);
    for (int t = 0; t < 50; ++t) {
        auto req = RequestMatrix::bernoulli(16, 0.5, rng);
        Matching m = pim.match(req);
        EXPECT_TRUE(m.isLegalFor(req));
        EXPECT_TRUE(m.isMaximalFor(req));
    }
}

TEST(PimTest, SizeChangeWithoutResetFails)
{
    PimConfig cfg;
    cfg.accept = AcceptPolicy::RoundRobin;
    PimMatcher pim(cfg);
    RequestMatrix small(4);
    pim.match(small);
    RequestMatrix big(8);
    EXPECT_THROW(pim.match(big), UsageError);
    pim.reset();
    EXPECT_NO_THROW(pim.match(big));
}

TEST(PimTest, InvalidConfigRejected)
{
    EXPECT_THROW(PimMatcher(PimConfig{.iterations = -1}), UsageError);
    PimConfig cfg;
    cfg.output_capacity = 0;
    EXPECT_THROW(PimMatcher{cfg}, UsageError);
}

TEST(PimTest, NameReflectsConfig)
{
    EXPECT_EQ(PimMatcher(PimConfig{.iterations = 4}).name(), "PIM(4)");
    EXPECT_EQ(PimMatcher(PimConfig{.iterations = 0}).name(),
              "PIM(complete)");
}

// ------------------------------------------------------------------
// Property sweep: legality + output-uniqueness for every combination of
// size, density, iteration count, accept policy, and seed.
// ------------------------------------------------------------------

using PimSweepParam = std::tuple<int, double, int, AcceptPolicy, uint64_t>;

class PimSweepTest : public ::testing::TestWithParam<PimSweepParam>
{
};

TEST_P(PimSweepTest, ProducesLegalMatchings)
{
    auto [n, p, iterations, accept, seed] = GetParam();
    PimConfig cfg;
    cfg.iterations = iterations;
    cfg.accept = accept;
    cfg.seed = seed;
    PimMatcher pim(cfg);
    Xoshiro256 rng(seed ^ 0xabcdef);
    for (int trial = 0; trial < 20; ++trial) {
        auto req = RequestMatrix::bernoulli(n, p, rng);
        Matching m = pim.match(req);
        EXPECT_TRUE(m.isLegalFor(req));
        if (iterations == 0)
            EXPECT_TRUE(m.isMaximalFor(req));
        // Each output matched at most once (capacity 1).
        for (PortId j = 0; j < n; ++j)
            EXPECT_LE(m.outputDegree(j), 1);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PimSweepTest,
    ::testing::Combine(::testing::Values(2, 4, 16, 32),
                       ::testing::Values(0.1, 0.5, 1.0),
                       ::testing::Values(1, 4, 0),
                       ::testing::Values(AcceptPolicy::Random,
                                         AcceptPolicy::RoundRobin),
                       ::testing::Values(1ULL, 99ULL)));

}  // namespace
}  // namespace an2
