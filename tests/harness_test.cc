// Tests for the experiment-sweep subsystem (an2/harness/*): grid
// expansion, deterministic seeding, thread-count invariance of the JSON
// output, Welford aggregation, and the JSON emitter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "an2/base/error.h"
#include "an2/harness/aggregate.h"
#include "an2/harness/json_writer.h"
#include "an2/harness/sweep.h"
#include "an2/matching/pim.h"
#include "an2/sim/iq_switch.h"
#include "an2/sim/oq_switch.h"
#include "an2/sim/traffic.h"

namespace an2::harness {
namespace {

SweepSpec
smallSpec()
{
    SweepSpec spec;
    spec.name = "test";
    spec.description = "unit-test sweep";
    spec.workload = "uniform";
    spec.archs = {
        {"OutputQueued",
         [](int n, uint64_t) -> std::unique_ptr<SwitchModel> {
             return std::make_unique<OutputQueuedSwitch>(n);
         }},
        {"PIM(2)",
         [](int n, uint64_t seed) -> std::unique_ptr<SwitchModel> {
             PimConfig cfg;
             cfg.iterations = 2;
             cfg.seed = seed;
             return std::make_unique<InputQueuedSwitch>(
                 IqSwitchConfig{.n = n}, std::make_unique<PimMatcher>(cfg));
         }},
    };
    spec.sizes = {4, 8};
    spec.loads = {0.3, 0.6};
    spec.replicates = 3;
    spec.base_seed = 42;
    spec.slots = 2'000;
    spec.warmup = 200;
    spec.make_traffic = [](int n, double load, uint64_t seed) {
        return std::make_unique<UniformTraffic>(n, load, seed);
    };
    return spec;
}

// ------------------------------------------------------------------ sweep

TEST(SweepTest, GridExpansionOrderAndSeeds)
{
    SweepSpec spec = smallSpec();
    std::vector<RunPoint> grid = expandGrid(spec);
    ASSERT_EQ(grid.size(), 2u * 2u * 2u * 3u);
    // Arch-major, then size, then load, then replicate.
    EXPECT_EQ(grid[0].arch_index, 0);
    EXPECT_EQ(grid[0].size_index, 0);
    EXPECT_EQ(grid[0].load_index, 0);
    EXPECT_EQ(grid[0].replicate, 0);
    EXPECT_EQ(grid[1].replicate, 1);
    EXPECT_EQ(grid[3].load_index, 1);
    EXPECT_EQ(grid[6].size_index, 1);
    EXPECT_EQ(grid[12].arch_index, 1);
    for (size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(grid[i].run_index, static_cast<int>(i));
        // Switch seeds are pure functions of (base_seed, run_index) and
        // unique; traffic seeds key off the workload coordinate so the
        // two architectures face identical arrivals at each cell.
        EXPECT_EQ(grid[i].switch_seed, runSeed(42, grid[i].run_index, 0));
        int workload = (grid[i].size_index * 2 + grid[i].load_index) * 3 +
                       grid[i].replicate;
        EXPECT_EQ(grid[i].traffic_seed, runSeed(42, workload, 1));
        EXPECT_NE(grid[i].switch_seed, grid[i].traffic_seed);
        for (size_t j = 0; j < i; ++j)
            EXPECT_NE(grid[i].switch_seed, grid[j].switch_seed);
    }
    // Common random numbers: run 0 (arch 0) and run 12 (arch 1) share
    // the same (size, load, replicate) coordinate, hence the same
    // traffic stream.
    EXPECT_EQ(grid[0].traffic_seed, grid[12].traffic_seed);
    EXPECT_NE(grid[0].switch_seed, grid[12].switch_seed);
}

TEST(SweepTest, CommonRandomNumbersPairArchitectures)
{
    // Two "architectures" that are byte-identical models must produce
    // byte-identical results at every cell, because they see the same
    // arrivals. This is what makes cross-architecture deltas paired.
    SweepSpec spec = smallSpec();
    auto oq = [](int n, uint64_t) -> std::unique_ptr<SwitchModel> {
        return std::make_unique<OutputQueuedSwitch>(n);
    };
    spec.archs = {{"A", oq}, {"B", oq}};
    spec.replicates = 1;
    SweepResult res = runSweep(spec, 2);
    std::vector<CellSummary> cells = aggregate(spec, res);
    ASSERT_EQ(cells.size(), 8u);
    for (size_t i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(cells[i].mean_delay.mean,
                         cells[i + 4].mean_delay.mean);
        EXPECT_EQ(cells[i].delivered, cells[i + 4].delivered);
    }
}

TEST(SweepTest, InvalidSpecsRejected)
{
    SweepSpec spec = smallSpec();
    spec.archs.clear();
    EXPECT_THROW(expandGrid(spec), UsageError);

    spec = smallSpec();
    spec.loads.clear();
    EXPECT_THROW(expandGrid(spec), UsageError);

    spec = smallSpec();
    spec.replicates = 0;
    EXPECT_THROW(expandGrid(spec), UsageError);

    spec = smallSpec();
    spec.make_traffic = nullptr;
    EXPECT_THROW(expandGrid(spec), UsageError);

    spec = smallSpec();
    spec.sizes = {0};
    EXPECT_THROW(expandGrid(spec), UsageError);
}

TEST(SweepTest, RunErrorsPropagateToCaller)
{
    SweepSpec spec = smallSpec();
    spec.warmup = spec.slots;  // every run invalid: zero measured slots
    EXPECT_THROW(runSweep(spec, 2), UsageError);
}

TEST(SweepTest, ThreadCountInvariance)
{
    // The acceptance property of the whole subsystem: the same spec must
    // produce a byte-identical JSON document at 1 and 8 threads.
    SweepSpec spec = smallSpec();

    SweepResult serial = runSweep(spec, 1);
    SweepResult parallel = runSweep(spec, 8);
    ASSERT_EQ(serial.results.size(), parallel.results.size());
    for (size_t i = 0; i < serial.results.size(); ++i) {
        EXPECT_EQ(serial.results[i].mean_delay, parallel.results[i].mean_delay);
        EXPECT_EQ(serial.results[i].delivered, parallel.results[i].delivered);
        EXPECT_EQ(serial.results[i].per_connection,
                  parallel.results[i].per_connection);
    }

    std::string json1 = sweepToJson(spec, aggregate(spec, serial));
    std::string json8 = sweepToJson(spec, aggregate(spec, parallel));
    EXPECT_EQ(json1, json8);
}

TEST(SweepTest, ProgressReachesTotal)
{
    SweepSpec spec = smallSpec();
    spec.replicates = 1;
    int last = 0;
    int calls = 0;
    SweepResult res = runSweep(spec, 2, [&](int done, int total) {
        EXPECT_EQ(total, 8);
        last = std::max(last, done);
        ++calls;
    });
    EXPECT_EQ(last, 8);
    EXPECT_EQ(calls, 8);
    EXPECT_EQ(res.results.size(), 8u);
}

// -------------------------------------------------------------- aggregate

TEST(AggregateTest, WelfordMatchesHandComputedValues)
{
    // One arch, one size, one load, three replicates with known outputs:
    // feed synthetic SimResults straight into aggregate().
    SweepSpec spec = smallSpec();
    spec.archs.resize(1);
    spec.sizes = {4};
    spec.loads = {0.5};
    spec.replicates = 3;

    SweepResult fake;
    fake.grid = expandGrid(spec);
    fake.results.resize(3);
    const double delays[3] = {2.0, 4.0, 9.0};
    for (int i = 0; i < 3; ++i) {
        fake.results[i].mean_delay = delays[i];
        fake.results[i].p99_delay = 10.0 * delays[i];
        fake.results[i].throughput = 0.5;
        fake.results[i].offered = 0.5;
        fake.results[i].injected = 100 + i;
        fake.results[i].delivered = 90 + i;
        fake.results[i].max_occupancy = 7 * (i + 1);
    }

    std::vector<CellSummary> cells = aggregate(spec, fake);
    ASSERT_EQ(cells.size(), 1u);
    const CellSummary& c = cells[0];
    EXPECT_EQ(c.replicates, 3);
    // Hand-computed: mean = 5, unbiased variance = ((−3)² + (−1)² + 4²)/2
    // = 13, stddev = sqrt(13), ci95 = 1.96·sqrt(13)/sqrt(3).
    EXPECT_DOUBLE_EQ(c.mean_delay.mean, 5.0);
    EXPECT_NEAR(c.mean_delay.stddev, std::sqrt(13.0), 1e-12);
    EXPECT_NEAR(c.mean_delay.ci95, 1.96 * std::sqrt(13.0) / std::sqrt(3.0),
                1e-12);
    EXPECT_DOUBLE_EQ(c.mean_delay.min, 2.0);
    EXPECT_DOUBLE_EQ(c.mean_delay.max, 9.0);
    EXPECT_DOUBLE_EQ(c.p99_delay.mean, 50.0);
    EXPECT_DOUBLE_EQ(c.throughput.mean, 0.5);
    EXPECT_DOUBLE_EQ(c.throughput.stddev, 0.0);
    EXPECT_EQ(c.injected, 100 + 101 + 102);
    EXPECT_EQ(c.delivered, 90 + 91 + 92);
    EXPECT_EQ(c.max_occupancy, 21);
}

TEST(AggregateTest, SingleReplicateHasZeroCi)
{
    RunningStats s;
    s.add(3.5);
    Aggregate a = summarize(s);
    EXPECT_EQ(a.n, 1);
    EXPECT_DOUBLE_EQ(a.mean, 3.5);
    EXPECT_DOUBLE_EQ(a.stddev, 0.0);
    EXPECT_DOUBLE_EQ(a.ci95, 0.0);
    EXPECT_DOUBLE_EQ(a.min, 3.5);
    EXPECT_DOUBLE_EQ(a.max, 3.5);
}

TEST(AggregateTest, CellOrderMatchesAxes)
{
    SweepSpec spec = smallSpec();
    SweepResult res = runSweep(spec, 4);
    std::vector<CellSummary> cells = aggregate(spec, res);
    ASSERT_EQ(cells.size(), 8u);  // 2 archs x 2 sizes x 2 loads
    EXPECT_EQ(cells[0].arch, "OutputQueued");
    EXPECT_EQ(cells[0].size, 4);
    EXPECT_DOUBLE_EQ(cells[0].load, 0.3);
    EXPECT_DOUBLE_EQ(cells[1].load, 0.6);
    EXPECT_EQ(cells[2].size, 8);
    EXPECT_EQ(cells[4].arch, "PIM(2)");
    // Sanity: OQ at 30% load on a 4-port switch delivers what's offered.
    EXPECT_NEAR(cells[0].throughput.mean, cells[0].offered.mean, 0.02);
}

// ------------------------------------------------------------ json writer

TEST(JsonWriterTest, EscapingGoldenString)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(jsonEscape("tab\there\nnewline"), "tab\\there\\nnewline");
    EXPECT_EQ(jsonEscape(std::string("nul\x01") + "\x1f!"),
              "nul\\u0001\\u001f!");
    EXPECT_EQ(jsonEscape("\b\f\r"), "\\b\\f\\r");
}

TEST(JsonWriterTest, NumbersShortestRoundTrip)
{
    EXPECT_EQ(jsonNumber(0.2), "0.2");
    EXPECT_EQ(jsonNumber(0.95), "0.95");
    EXPECT_EQ(jsonNumber(1.0), "1");
    EXPECT_EQ(jsonNumber(-3.25), "-3.25");
    EXPECT_EQ(jsonNumber(1.0 / 3.0), "0.3333333333333333");
    // Round trip: parse back to the identical double.
    double ugly = 123456.789012345;
    EXPECT_EQ(std::strtod(jsonNumber(ugly).c_str(), nullptr), ugly);
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()), "null");
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
}

TEST(JsonWriterTest, DocumentGolden)
{
    JsonWriter w;
    w.beginObject();
    w.key("name").value("a\"b");
    w.key("n").value(3);
    w.key("x").value(0.5);
    w.key("ok").value(true);
    w.key("none").null();
    w.key("list").beginArray().value(1).value(2).endArray();
    w.key("empty").beginObject().endObject();
    w.endObject();
    EXPECT_EQ(w.str(), "{\n"
                       "  \"name\": \"a\\\"b\",\n"
                       "  \"n\": 3,\n"
                       "  \"x\": 0.5,\n"
                       "  \"ok\": true,\n"
                       "  \"none\": null,\n"
                       "  \"list\": [\n"
                       "    1,\n"
                       "    2\n"
                       "  ],\n"
                       "  \"empty\": {}\n"
                       "}\n");
}

TEST(JsonWriterTest, CompactStyleGolden)
{
    // The same document as DocumentGolden, emitted on one physical line
    // with no whitespace — the JSON-lines mode used by obs snapshots and
    // trace export.
    JsonWriter w(JsonStyle::Compact);
    w.beginObject();
    w.key("name").value("a\"b");
    w.key("n").value(3);
    w.key("x").value(0.5);
    w.key("ok").value(true);
    w.key("none").null();
    w.key("list").beginArray().value(1).value(2).endArray();
    w.key("empty").beginObject().endObject();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"name\":\"a\\\"b\",\"n\":3,\"x\":0.5,"
                       "\"ok\":true,\"none\":null,\"list\":[1,2],"
                       "\"empty\":{}}\n");
}

TEST(JsonWriterTest, StructuralMisuseAsserts)
{
    {
        JsonWriter w;
        w.beginObject();
        EXPECT_THROW(w.value(1), InternalError);  // value without key
    }
    {
        JsonWriter w;
        w.beginArray();
        EXPECT_THROW(w.key("k"), InternalError);  // key inside array
    }
    {
        JsonWriter w;
        w.beginObject();
        EXPECT_THROW(w.str(), InternalError);  // unfinished document
    }
    {
        JsonWriter w;
        w.beginObject();
        w.key("k");
        EXPECT_THROW(w.endObject(), InternalError);  // key without value
    }
}

TEST(JsonWriterTest, SweepSchemaShape)
{
    SweepSpec spec = smallSpec();
    spec.archs.resize(1);
    spec.sizes = {4};
    spec.loads = {0.3};
    spec.replicates = 2;
    SweepResult res = runSweep(spec, 1);
    std::string json = sweepToJson(spec, aggregate(spec, res));

    // Stable schema markers (consumed by the BENCH_*.json trajectory).
    EXPECT_NE(json.find("\"schema\": \"an2.sweep.v1\""), std::string::npos);
    EXPECT_NE(json.find("\"experiment\": \"test\""), std::string::npos);
    EXPECT_NE(json.find("\"base_seed\": \"42\""), std::string::npos);
    EXPECT_NE(json.find("\"axes\""), std::string::npos);
    EXPECT_NE(json.find("\"cells\""), std::string::npos);
    EXPECT_NE(json.find("\"mean_delay\""), std::string::npos);
    EXPECT_NE(json.find("\"ci95\""), std::string::npos);
    EXPECT_EQ(json.find("wall"), std::string::npos);  // no timing data
}

}  // namespace
}  // namespace an2::harness
