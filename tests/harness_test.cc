// Tests for the experiment-sweep subsystem (an2/harness/*): grid
// expansion, deterministic seeding, thread-count invariance of the JSON
// output, Welford aggregation, and the JSON emitter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "an2/base/error.h"
#include "an2/harness/aggregate.h"
#include "an2/harness/cli.h"
#include "an2/harness/json_writer.h"
#include "an2/harness/sweep.h"
#include "an2/matching/pim.h"
#include "an2/sim/iq_switch.h"
#include "an2/sim/oq_switch.h"
#include "an2/sim/traffic.h"

namespace an2::harness {
namespace {

SweepSpec
smallSpec()
{
    SweepSpec spec;
    spec.name = "test";
    spec.description = "unit-test sweep";
    spec.workload = "uniform";
    spec.archs = {
        {"OutputQueued",
         [](int n, uint64_t) -> std::unique_ptr<SwitchModel> {
             return std::make_unique<OutputQueuedSwitch>(n);
         }},
        {"PIM(2)",
         [](int n, uint64_t seed) -> std::unique_ptr<SwitchModel> {
             PimConfig cfg;
             cfg.iterations = 2;
             cfg.seed = seed;
             return std::make_unique<InputQueuedSwitch>(
                 IqSwitchConfig{.n = n}, std::make_unique<PimMatcher>(cfg));
         }},
    };
    spec.sizes = {4, 8};
    spec.loads = {0.3, 0.6};
    spec.replicates = 3;
    spec.base_seed = 42;
    spec.slots = 2'000;
    spec.warmup = 200;
    spec.make_traffic = [](int n, double load, uint64_t seed) {
        return std::make_unique<UniformTraffic>(n, load, seed);
    };
    return spec;
}

// ------------------------------------------------------------------ sweep

TEST(SweepTest, GridExpansionOrderAndSeeds)
{
    SweepSpec spec = smallSpec();
    std::vector<RunPoint> grid = expandGrid(spec);
    ASSERT_EQ(grid.size(), 2u * 2u * 2u * 3u);
    // Arch-major, then size, then load, then replicate.
    EXPECT_EQ(grid[0].arch_index, 0);
    EXPECT_EQ(grid[0].size_index, 0);
    EXPECT_EQ(grid[0].load_index, 0);
    EXPECT_EQ(grid[0].replicate, 0);
    EXPECT_EQ(grid[1].replicate, 1);
    EXPECT_EQ(grid[3].load_index, 1);
    EXPECT_EQ(grid[6].size_index, 1);
    EXPECT_EQ(grid[12].arch_index, 1);
    for (size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(grid[i].run_index, static_cast<int>(i));
        // Switch seeds are pure functions of (base_seed, run_index) and
        // unique; traffic seeds key off the workload coordinate so the
        // two architectures face identical arrivals at each cell.
        EXPECT_EQ(grid[i].switch_seed, runSeed(42, grid[i].run_index, 0));
        int workload = (grid[i].size_index * 2 + grid[i].load_index) * 3 +
                       grid[i].replicate;
        EXPECT_EQ(grid[i].traffic_seed, runSeed(42, workload, 1));
        EXPECT_NE(grid[i].switch_seed, grid[i].traffic_seed);
        for (size_t j = 0; j < i; ++j)
            EXPECT_NE(grid[i].switch_seed, grid[j].switch_seed);
    }
    // Common random numbers: run 0 (arch 0) and run 12 (arch 1) share
    // the same (size, load, replicate) coordinate, hence the same
    // traffic stream.
    EXPECT_EQ(grid[0].traffic_seed, grid[12].traffic_seed);
    EXPECT_NE(grid[0].switch_seed, grid[12].switch_seed);
}

TEST(SweepTest, CommonRandomNumbersPairArchitectures)
{
    // Two "architectures" that are byte-identical models must produce
    // byte-identical results at every cell, because they see the same
    // arrivals. This is what makes cross-architecture deltas paired.
    SweepSpec spec = smallSpec();
    auto oq = [](int n, uint64_t) -> std::unique_ptr<SwitchModel> {
        return std::make_unique<OutputQueuedSwitch>(n);
    };
    spec.archs = {{"A", oq}, {"B", oq}};
    spec.replicates = 1;
    SweepResult res = runSweep(spec, 2);
    std::vector<CellSummary> cells = aggregate(spec, res);
    ASSERT_EQ(cells.size(), 8u);
    for (size_t i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(cells[i].mean_delay.mean,
                         cells[i + 4].mean_delay.mean);
        EXPECT_EQ(cells[i].delivered, cells[i + 4].delivered);
    }
}

TEST(SweepTest, InvalidSpecsRejected)
{
    SweepSpec spec = smallSpec();
    spec.archs.clear();
    EXPECT_THROW(expandGrid(spec), UsageError);

    spec = smallSpec();
    spec.loads.clear();
    EXPECT_THROW(expandGrid(spec), UsageError);

    spec = smallSpec();
    spec.replicates = 0;
    EXPECT_THROW(expandGrid(spec), UsageError);

    spec = smallSpec();
    spec.make_traffic = nullptr;
    EXPECT_THROW(expandGrid(spec), UsageError);

    spec = smallSpec();
    spec.sizes = {0};
    EXPECT_THROW(expandGrid(spec), UsageError);
}

TEST(SweepTest, RunErrorsPropagateToCaller)
{
    SweepSpec spec = smallSpec();
    spec.warmup = spec.slots;  // every run invalid: zero measured slots
    EXPECT_THROW(runSweep(spec, 2), UsageError);
}

TEST(SweepTest, ThreadCountInvariance)
{
    // The acceptance property of the whole subsystem: the same spec must
    // produce a byte-identical JSON document at 1 and 8 threads.
    SweepSpec spec = smallSpec();

    SweepResult serial = runSweep(spec, 1);
    SweepResult parallel = runSweep(spec, 8);
    ASSERT_EQ(serial.results.size(), parallel.results.size());
    for (size_t i = 0; i < serial.results.size(); ++i) {
        EXPECT_EQ(serial.results[i].mean_delay, parallel.results[i].mean_delay);
        EXPECT_EQ(serial.results[i].delivered, parallel.results[i].delivered);
        EXPECT_EQ(serial.results[i].per_connection,
                  parallel.results[i].per_connection);
    }

    std::string json1 = sweepToJson(spec, aggregate(spec, serial));
    std::string json8 = sweepToJson(spec, aggregate(spec, parallel));
    EXPECT_EQ(json1, json8);
}

TEST(SweepTest, FaultedSweepThreadInvarianceAndGatedJson)
{
    // With a fault plan attached, the sweep must stay byte-identical
    // across thread counts (fault-seed stream 2 is a pure function of
    // the run index), and the JSON must carry the fault metadata and
    // per-cell loss fields — which are absent from unfaulted documents.
    SweepSpec spec = smallSpec();
    spec.slots = 1'000;
    spec.faults = fault::FaultPlan::parse(
        "out_down(1)@300,out_up(1)@600,drop(0.02)");

    SweepResult serial = runSweep(spec, 1);
    SweepResult parallel = runSweep(spec, 8);
    std::string json1 = sweepToJson(spec, aggregate(spec, serial));
    std::string json8 = sweepToJson(spec, aggregate(spec, parallel));
    EXPECT_EQ(json1, json8);

    EXPECT_NE(json1.find("\"faults\": \"out_down(1)@300,out_up(1)@600,"
                         "drop(0.02)\""),
              std::string::npos);
    EXPECT_NE(json1.find("\"fault_dropped\""), std::string::npos);
    EXPECT_NE(json1.find("\"fault_corrupted\""), std::string::npos);
    EXPECT_NE(json1.find("\"switch_dropped\""), std::string::npos);

    // Losses actually happened (drop(0.02) over every run).
    int64_t fault_dropped = 0;
    for (const SimResult& r : serial.results)
        fault_dropped += r.fault_dropped;
    EXPECT_GT(fault_dropped, 0);

    // The unfaulted document is unchanged by the feature's existence.
    SweepSpec clean = smallSpec();
    clean.slots = 1'000;
    std::string clean_json =
        sweepToJson(clean, aggregate(clean, runSweep(clean, 2)));
    EXPECT_EQ(clean_json.find("\"faults\""), std::string::npos);
    EXPECT_EQ(clean_json.find("fault_dropped"), std::string::npos);
    EXPECT_EQ(clean_json.find("switch_dropped"), std::string::npos);
}

TEST(SweepTest, ProgressReachesTotal)
{
    SweepSpec spec = smallSpec();
    spec.replicates = 1;
    int last = 0;
    int calls = 0;
    SweepResult res = runSweep(spec, 2, [&](int done, int total) {
        EXPECT_EQ(total, 8);
        last = std::max(last, done);
        ++calls;
    });
    EXPECT_EQ(last, 8);
    EXPECT_EQ(calls, 8);
    EXPECT_EQ(res.results.size(), 8u);
}

// -------------------------------------------------------------- aggregate

TEST(AggregateTest, WelfordMatchesHandComputedValues)
{
    // One arch, one size, one load, three replicates with known outputs:
    // feed synthetic SimResults straight into aggregate().
    SweepSpec spec = smallSpec();
    spec.archs.resize(1);
    spec.sizes = {4};
    spec.loads = {0.5};
    spec.replicates = 3;

    SweepResult fake;
    fake.grid = expandGrid(spec);
    fake.results.resize(3);
    const double delays[3] = {2.0, 4.0, 9.0};
    for (int i = 0; i < 3; ++i) {
        fake.results[i].mean_delay = delays[i];
        fake.results[i].p99_delay = 10.0 * delays[i];
        fake.results[i].throughput = 0.5;
        fake.results[i].offered = 0.5;
        fake.results[i].injected = 100 + i;
        fake.results[i].delivered = 90 + i;
        fake.results[i].max_occupancy = 7 * (i + 1);
    }

    std::vector<CellSummary> cells = aggregate(spec, fake);
    ASSERT_EQ(cells.size(), 1u);
    const CellSummary& c = cells[0];
    EXPECT_EQ(c.replicates, 3);
    // Hand-computed: mean = 5, unbiased variance = ((−3)² + (−1)² + 4²)/2
    // = 13, stddev = sqrt(13), ci95 = 1.96·sqrt(13)/sqrt(3).
    EXPECT_DOUBLE_EQ(c.mean_delay.mean, 5.0);
    EXPECT_NEAR(c.mean_delay.stddev, std::sqrt(13.0), 1e-12);
    EXPECT_NEAR(c.mean_delay.ci95, 1.96 * std::sqrt(13.0) / std::sqrt(3.0),
                1e-12);
    EXPECT_DOUBLE_EQ(c.mean_delay.min, 2.0);
    EXPECT_DOUBLE_EQ(c.mean_delay.max, 9.0);
    EXPECT_DOUBLE_EQ(c.p99_delay.mean, 50.0);
    EXPECT_DOUBLE_EQ(c.throughput.mean, 0.5);
    EXPECT_DOUBLE_EQ(c.throughput.stddev, 0.0);
    EXPECT_EQ(c.injected, 100 + 101 + 102);
    EXPECT_EQ(c.delivered, 90 + 91 + 92);
    EXPECT_EQ(c.max_occupancy, 21);
}

TEST(AggregateTest, SingleReplicateHasZeroCi)
{
    RunningStats s;
    s.add(3.5);
    Aggregate a = summarize(s);
    EXPECT_EQ(a.n, 1);
    EXPECT_DOUBLE_EQ(a.mean, 3.5);
    EXPECT_DOUBLE_EQ(a.stddev, 0.0);
    EXPECT_DOUBLE_EQ(a.ci95, 0.0);
    EXPECT_DOUBLE_EQ(a.min, 3.5);
    EXPECT_DOUBLE_EQ(a.max, 3.5);
}

TEST(AggregateTest, CellOrderMatchesAxes)
{
    SweepSpec spec = smallSpec();
    SweepResult res = runSweep(spec, 4);
    std::vector<CellSummary> cells = aggregate(spec, res);
    ASSERT_EQ(cells.size(), 8u);  // 2 archs x 2 sizes x 2 loads
    EXPECT_EQ(cells[0].arch, "OutputQueued");
    EXPECT_EQ(cells[0].size, 4);
    EXPECT_DOUBLE_EQ(cells[0].load, 0.3);
    EXPECT_DOUBLE_EQ(cells[1].load, 0.6);
    EXPECT_EQ(cells[2].size, 8);
    EXPECT_EQ(cells[4].arch, "PIM(2)");
    // Sanity: OQ at 30% load on a 4-port switch delivers what's offered.
    EXPECT_NEAR(cells[0].throughput.mean, cells[0].offered.mean, 0.02);
}

// ------------------------------------------------------------ json writer

TEST(JsonWriterTest, EscapingGoldenString)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(jsonEscape("tab\there\nnewline"), "tab\\there\\nnewline");
    EXPECT_EQ(jsonEscape(std::string("nul\x01") + "\x1f!"),
              "nul\\u0001\\u001f!");
    EXPECT_EQ(jsonEscape("\b\f\r"), "\\b\\f\\r");
}

TEST(JsonWriterTest, NumbersShortestRoundTrip)
{
    EXPECT_EQ(jsonNumber(0.2), "0.2");
    EXPECT_EQ(jsonNumber(0.95), "0.95");
    EXPECT_EQ(jsonNumber(1.0), "1");
    EXPECT_EQ(jsonNumber(-3.25), "-3.25");
    EXPECT_EQ(jsonNumber(1.0 / 3.0), "0.3333333333333333");
    // Round trip: parse back to the identical double.
    double ugly = 123456.789012345;
    EXPECT_EQ(std::strtod(jsonNumber(ugly).c_str(), nullptr), ugly);
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()), "null");
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
}

TEST(JsonWriterTest, DocumentGolden)
{
    JsonWriter w;
    w.beginObject();
    w.key("name").value("a\"b");
    w.key("n").value(3);
    w.key("x").value(0.5);
    w.key("ok").value(true);
    w.key("none").null();
    w.key("list").beginArray().value(1).value(2).endArray();
    w.key("empty").beginObject().endObject();
    w.endObject();
    EXPECT_EQ(w.str(), "{\n"
                       "  \"name\": \"a\\\"b\",\n"
                       "  \"n\": 3,\n"
                       "  \"x\": 0.5,\n"
                       "  \"ok\": true,\n"
                       "  \"none\": null,\n"
                       "  \"list\": [\n"
                       "    1,\n"
                       "    2\n"
                       "  ],\n"
                       "  \"empty\": {}\n"
                       "}\n");
}

TEST(JsonWriterTest, CompactStyleGolden)
{
    // The same document as DocumentGolden, emitted on one physical line
    // with no whitespace — the JSON-lines mode used by obs snapshots and
    // trace export.
    JsonWriter w(JsonStyle::Compact);
    w.beginObject();
    w.key("name").value("a\"b");
    w.key("n").value(3);
    w.key("x").value(0.5);
    w.key("ok").value(true);
    w.key("none").null();
    w.key("list").beginArray().value(1).value(2).endArray();
    w.key("empty").beginObject().endObject();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"name\":\"a\\\"b\",\"n\":3,\"x\":0.5,"
                       "\"ok\":true,\"none\":null,\"list\":[1,2],"
                       "\"empty\":{}}\n");
}

TEST(JsonWriterTest, StructuralMisuseAsserts)
{
    {
        JsonWriter w;
        w.beginObject();
        EXPECT_THROW(w.value(1), InternalError);  // value without key
    }
    {
        JsonWriter w;
        w.beginArray();
        EXPECT_THROW(w.key("k"), InternalError);  // key inside array
    }
    {
        JsonWriter w;
        w.beginObject();
        EXPECT_THROW(w.str(), InternalError);  // unfinished document
    }
    {
        JsonWriter w;
        w.beginObject();
        w.key("k");
        EXPECT_THROW(w.endObject(), InternalError);  // key without value
    }
}

TEST(JsonWriterTest, SweepSchemaShape)
{
    SweepSpec spec = smallSpec();
    spec.archs.resize(1);
    spec.sizes = {4};
    spec.loads = {0.3};
    spec.replicates = 2;
    SweepResult res = runSweep(spec, 1);
    std::string json = sweepToJson(spec, aggregate(spec, res));

    // Stable schema markers (consumed by the BENCH_*.json trajectory).
    EXPECT_NE(json.find("\"schema\": \"an2.sweep.v1\""), std::string::npos);
    EXPECT_NE(json.find("\"experiment\": \"test\""), std::string::npos);
    EXPECT_NE(json.find("\"base_seed\": \"42\""), std::string::npos);
    EXPECT_NE(json.find("\"axes\""), std::string::npos);
    EXPECT_NE(json.find("\"cells\""), std::string::npos);
    EXPECT_NE(json.find("\"mean_delay\""), std::string::npos);
    EXPECT_NE(json.find("\"ci95\""), std::string::npos);
    EXPECT_EQ(json.find("wall"), std::string::npos);  // no timing data
}

TEST(JsonWriterTest, NonFiniteValuesEmitNullInDocuments)
{
    // Document-level pin of the NaN/Inf policy: a non-finite double
    // anywhere in a document must come out as JSON null, keeping the
    // output parseable (bare `nan`/`inf` tokens are not JSON).
    JsonWriter w;
    w.beginObject();
    w.key("nan").value(std::nan(""));
    w.key("pos_inf").value(std::numeric_limits<double>::infinity());
    w.key("neg_inf").value(-std::numeric_limits<double>::infinity());
    w.key("mixed")
        .beginArray()
        .value(1.5)
        .value(std::nan(""))
        .value(2.5)
        .endArray();
    w.endObject();
    EXPECT_EQ(w.str(), "{\n"
                       "  \"nan\": null,\n"
                       "  \"pos_inf\": null,\n"
                       "  \"neg_inf\": null,\n"
                       "  \"mixed\": [\n"
                       "    1.5,\n"
                       "    null,\n"
                       "    2.5\n"
                       "  ]\n"
                       "}\n");
}

// -------------------------------------------------------------------- cli

/** Run parseSweepCli over a brace-list of tokens (argv[0] included). */
bool
parseArgs(std::initializer_list<const char*> tokens, SweepCli& cli,
          std::string& err)
{
    std::vector<char*> argv;
    for (const char* t : tokens)
        argv.push_back(const_cast<char*>(t));
    return parseSweepCli(static_cast<int>(argv.size()), argv.data(), cli,
                         err);
}

TEST(CliTest, ParsesTheFullVocabulary)
{
    SweepCli cli;
    std::string err;
    ASSERT_TRUE(parseArgs({"prog", "--experiment", "fig3", "--threads", "4",
                           "--replicates", "7", "--slots", "5000",
                           "--warmup", "100", "--seed", "99", "--loads",
                           "0.5,0.9", "--size", "16", "--json", "out.json",
                           "--faults", "out_down(2)@10,out_up(2)@20"},
                          cli, err))
        << err;
    EXPECT_EQ(cli.experiment, "fig3");
    EXPECT_EQ(cli.threads, 4);
    EXPECT_EQ(cli.replicates, 7);
    EXPECT_EQ(cli.slots, 5000);
    EXPECT_EQ(cli.warmup, 100);
    EXPECT_TRUE(cli.seed_set);
    EXPECT_EQ(cli.seed, 99u);
    ASSERT_EQ(cli.loads.size(), 2u);
    EXPECT_EQ(cli.loads[1], 0.9);
    EXPECT_EQ(cli.size, 16);
    EXPECT_EQ(cli.json_path, "out.json");
    EXPECT_EQ(cli.faults.events.size(), 2u);
    EXPECT_EQ(cli.faults_spec, "out_down(2)@10,out_up(2)@20");
}

TEST(CliTest, UnknownFlagNamesTheToken)
{
    SweepCli cli;
    std::string err;
    EXPECT_FALSE(parseArgs({"prog", "--bogus"}, cli, err));
    EXPECT_NE(err.find("--bogus"), std::string::npos) << err;
}

TEST(CliTest, MalformedNumericsNameFlagAndValue)
{
    struct Case
    {
        const char* flag;
        const char* value;
    };
    for (Case c : {Case{"--threads", "banana"}, Case{"--threads", "-1"},
                   Case{"--replicates", "2x"}, Case{"--slots", "1e4"},
                   Case{"--warmup", "ten"}, Case{"--seed", "-3"},
                   Case{"--size", "99999999999999999999"},
                   Case{"--loads", "0.5,oops"}, Case{"--loads", "1.5"},
                   Case{"--loads", "0"}}) {
        SweepCli cli;
        std::string err;
        EXPECT_FALSE(parseArgs({"prog", c.flag, c.value}, cli, err))
            << c.flag << " " << c.value;
        EXPECT_NE(err.find(c.flag), std::string::npos)
            << c.flag << ": " << err;
    }
}

TEST(CliTest, MissingValueAndBadFaultSpecAreErrors)
{
    {
        SweepCli cli;
        std::string err;
        EXPECT_FALSE(parseArgs({"prog", "--threads"}, cli, err));
        EXPECT_NE(err.find("--threads"), std::string::npos) << err;
    }
    {
        SweepCli cli;
        std::string err;
        EXPECT_FALSE(
            parseArgs({"prog", "--faults", "explode(3)@5"}, cli, err));
        EXPECT_NE(err.find("explode"), std::string::npos) << err;
    }
}

TEST(CliTest, RepeatedFlagIsAnErrorNamingTheFlag)
{
    // Last-wins on a repeated flag would silently discard one of two
    // conflicting values; the parser must refuse and say which flag.
    struct Case
    {
        std::initializer_list<const char*> tokens;
        const char* flag;
    };
    for (const Case& c :
         {Case{{"prog", "--threads", "2", "--threads", "4"}, "--threads"},
          Case{{"prog", "--loads", "0.5", "--loads", "0.9"}, "--loads"},
          Case{{"prog", "--json", "a.json", "--json", "b.json"}, "--json"},
          Case{{"prog", "--metrics-every=5", "--metrics-every", "7"},
               "--metrics-every"},
          Case{{"prog", "--arch", "cioq", "--arch", "cioq"}, "--arch"}}) {
        SweepCli cli;
        std::string err;
        EXPECT_FALSE(parseArgs(c.tokens, cli, err)) << c.flag;
        EXPECT_NE(err.find("duplicate"), std::string::npos) << err;
        EXPECT_NE(err.find(c.flag), std::string::npos) << err;
    }
    // --help and --list stay idempotent: wrappers commonly append them.
    SweepCli cli;
    std::string err;
    EXPECT_TRUE(parseArgs({"prog", "--help", "--help"}, cli, err)) << err;
    EXPECT_TRUE(cli.help);
}

TEST(CliTest, ObservabilityIntervalsRejectZeroAndNegative)
{
    // A zero or negative cadence/capacity would fall through to "never
    // sample" or an empty ring; the parser rejects it outright.
    struct Case
    {
        const char* flag;
        const char* value;
    };
    for (Case c : {Case{"--metrics-every", "0"},
                   Case{"--metrics-every", "-3"},
                   Case{"--trace-capacity", "0"},
                   Case{"--trace-capacity", "-1"},
                   Case{"--snapshot-every", "0"},
                   Case{"--snapshot-every", "-7"}}) {
        SweepCli cli;
        std::string err;
        EXPECT_FALSE(parseArgs({"prog", c.flag, c.value}, cli, err))
            << c.flag << " " << c.value;
        EXPECT_NE(err.find(c.flag), std::string::npos)
            << c.flag << ": " << err;
    }
}

TEST(CliTest, CioqArchFlagsValidated)
{
    {
        SweepCli cli;
        std::string err;
        ASSERT_TRUE(parseArgs({"prog", "--arch", "cioq", "--speedup", "3",
                               "--service", "wrr"},
                              cli, err))
            << err;
        EXPECT_EQ(cli.arch, "cioq");
        EXPECT_EQ(cli.speedup, 3);
        EXPECT_EQ(cli.service, "wrr");
    }
    for (auto tokens :
         {std::initializer_list<const char*>{"prog", "--arch", "oq"},
          {"prog", "--arch", "cioq", "--speedup", "0"},
          {"prog", "--arch", "cioq", "--speedup", "5"},
          {"prog", "--arch", "cioq", "--service", "fifo"},
          {"prog", "--speedup", "2"},
          {"prog", "--service", "wrr"}}) {
        SweepCli cli;
        std::string err;
        EXPECT_FALSE(parseArgs(tokens, cli, err));
        EXPECT_FALSE(err.empty());
    }
    // The dependency errors name the missing flag.
    SweepCli cli;
    std::string err;
    EXPECT_FALSE(parseArgs({"prog", "--speedup", "2"}, cli, err));
    EXPECT_NE(err.find("--arch cioq"), std::string::npos) << err;
}

TEST(CliTest, ApplyCliOverlaysOntoSpec)
{
    SweepCli cli;
    std::string err;
    ASSERT_TRUE(parseArgs({"prog", "--replicates", "2", "--slots", "700",
                           "--loads", "0.4", "--size", "8", "--faults",
                           "in_down(0)@5,drop(0.1)"},
                          cli, err))
        << err;
    SweepSpec spec = smallSpec();
    applyCli(cli, spec);
    EXPECT_EQ(spec.replicates, 2);
    EXPECT_EQ(spec.slots, 700);
    ASSERT_EQ(spec.loads.size(), 1u);
    EXPECT_EQ(spec.loads[0], 0.4);
    ASSERT_EQ(spec.sizes.size(), 1u);
    EXPECT_EQ(spec.sizes[0], 8);
    EXPECT_FALSE(spec.faults.empty());
    EXPECT_EQ(spec.faults.str(), "in_down(0)@5,drop(0.1)");
}

}  // namespace
}  // namespace an2::harness
