/**
 * The sharded engine's one promise: results byte-identical to the
 * serial event loop on any thread count, with and without faults.
 */
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "an2/matching/pim.h"
#include "an2/topo/lan.h"
#include "an2/topo/topology.h"

using namespace an2;
using namespace an2::topo;

namespace {

LanConfig
testConfig()
{
    LanConfig config;
    config.net.switch_frame_slots = 20;
    config.net.controller_padding = 2;
    config.seed = 99;
    config.matcher = [](int, uint64_t seed) {
        PimConfig cfg;
        cfg.iterations = 4;
        cfg.seed = seed;
        return std::make_unique<PimMatcher>(cfg);
    };
    return config;
}

/** Same topology, same flows, same faults on every Lan under test. */
std::unique_ptr<Lan>
buildLan(const Topology& topo, const std::string& faults)
{
    auto lan = std::make_unique<Lan>(topo, testConfig());
    lan->placeMatrix(Pattern::Uniform,
                     TrafficSpec{TrafficClass::VBR, 0.2, 1}, 7);
    lan->placeMatrix(Pattern::Uniform,
                     TrafficSpec{TrafficClass::CBR, 0.0, 2}, 8);
    if (!faults.empty())
        lan->scheduleFaults(fault::FaultPlan::parse(faults));
    return lan;
}

/** Full observable state: totals plus every per-flow sink statistic. */
void
expectIdentical(const Lan& a, const Lan& b)
{
    LanStats sa = a.stats();
    LanStats sb = b.stats();
    EXPECT_EQ(sa.injected, sb.injected);
    EXPECT_EQ(sa.delivered, sb.delivered);
    EXPECT_EQ(sa.order_violations, sb.order_violations);
    EXPECT_EQ(sa.link_lost, sb.link_lost);
    EXPECT_EQ(sa.vbr_dropped, sb.vbr_dropped);
    EXPECT_EQ(sa.cbr_forwarded, sb.cbr_forwarded);
    EXPECT_EQ(sa.vbr_forwarded, sb.vbr_forwarded);
    EXPECT_EQ(sa.reroutes, sb.reroutes);
    EXPECT_EQ(sa.unroutable, sb.unroutable);
    // Bitwise, not approximate: identical cells in identical order.
    EXPECT_EQ(sa.mean_wall_latency_ps, sb.mean_wall_latency_ps);
    EXPECT_EQ(sa.mean_adjusted_latency_ps, sb.mean_adjusted_latency_ps);

    for (NodeId h : a.topology().hosts()) {
        std::map<FlowId, FlowDeliveryStats> da =
            a.net().controller(h).allDeliveryStats();
        std::map<FlowId, FlowDeliveryStats> db =
            b.net().controller(h).allDeliveryStats();
        ASSERT_EQ(da.size(), db.size());
        for (const auto& [flow, st] : da) {
            ASSERT_TRUE(db.count(flow));
            const FlowDeliveryStats& other = db.at(flow);
            EXPECT_EQ(st.delivered, other.delivered) << "flow " << flow;
            EXPECT_EQ(st.order_violations, other.order_violations);
            EXPECT_EQ(st.wall_latency_ps.sum(), other.wall_latency_ps.sum());
            EXPECT_EQ(st.adjusted_latency_ps.sum(),
                      other.adjusted_latency_ps.sum());
        }
    }
}

}  // namespace

TEST(ParallelNetTest, MatchesSerialOnEveryThreadCount)
{
    Topology topo = Topology::fatTree(4, 1);
    auto serial = buildLan(topo, "");
    serial->runFrames(30, 1);
    ASSERT_GT(serial->stats().delivered, 0);

    for (int threads : {2, 5, 8}) {
        auto parallel = buildLan(topo, "");
        parallel->runFrames(30, threads);
        EXPECT_GT(parallel->shardWindows(), 0);
        expectIdentical(*serial, *parallel);
    }
}

TEST(ParallelNetTest, MatchesSerialUnderLinkFaults)
{
    Topology topo = Topology::fatTree(4, 1);
    // Down a core-facing trunk mid-run, revive it later: reroutes fire
    // and in-flight cells are lost, identically on both engines.
    auto probe = buildLan(topo, "");
    int target = probe->netLinkIndex(0, true);
    std::string faults = "link_down(" + std::to_string(target) +
                         ")@200,link_up(" + std::to_string(target) + ")@500";

    auto serial = buildLan(topo, faults);
    serial->runFrames(40, 1);

    auto parallel = buildLan(topo, faults);
    parallel->runFrames(40, 4);

    expectIdentical(*serial, *parallel);
    // The dead trunk carried rerouted flows; paths agree exactly.
    ASSERT_EQ(serial->numFlows(), parallel->numFlows());
    for (FlowId f = 0; f < serial->numFlows(); ++f)
        EXPECT_EQ(serial->flowPath(f), parallel->flowPath(f));
}

TEST(ParallelNetTest, SegmentedRunsMatchOneShot)
{
    Topology topo = Topology::star(3, 2);
    auto one = buildLan(topo, "");
    one->runFrames(20, 3);

    auto segmented = buildLan(topo, "");
    segmented->runFrames(5, 3);
    segmented->runFrames(20, 3);  // runs are cumulative wall-clock

    expectIdentical(*one, *segmented);
}

TEST(ParallelNetTest, CbrReroutePinningAndVbrFailover)
{
    // A ring has exactly two edge-disjoint paths between any pair, so
    // killing the flow's trunk forces the long way around for VBR and
    // losses for pinned CBR.
    Topology topo = Topology::ring(4, 1);
    auto lan = std::make_unique<Lan>(topo, testConfig());
    std::vector<NodeId> hosts = topo.hosts();
    FlowId vbr = lan->addVbrFlow(hosts[0], hosts[1], 0.3);
    FlowId cbr = lan->addCbrFlow(hosts[0], hosts[1], 2);
    ASSERT_NE(cbr, kNoFlow);

    std::vector<NodeId> vbr_before = lan->flowPath(vbr);
    // Kill the first trunk hop of the VBR path (switch -> switch).
    NodeId u = vbr_before[1];
    NodeId v = vbr_before[2];
    int edge = -1;
    bool a_to_b = true;
    for (const Neighbor& nb : topo.neighbors(u))
        if (nb.node == v) {
            edge = nb.edge;
            a_to_b = topo.edge(nb.edge).a == u;
        }
    ASSERT_GE(edge, 0);
    int target = lan->netLinkIndex(edge, a_to_b);
    lan->scheduleFaults(fault::FaultPlan::parse(
        "link_down(" + std::to_string(target) + ")@100"));
    lan->runFrames(30, 2);

    EXPECT_EQ(lan->reroutes(), 1);
    EXPECT_EQ(lan->unroutable(), 0);
    EXPECT_NE(lan->flowPath(vbr), vbr_before);
    // VBR still flows end to end over the long path; CBR stays pinned
    // through the dead link, visible as lost cells.
    EXPECT_GT(lan->net().controller(hosts[1]).deliveryStats(vbr).delivered,
              0);
    EXPECT_GT(lan->stats().link_lost, 0);
}
