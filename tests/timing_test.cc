// Tests for Appendix B frame timing bounds (an2/cbr/timing.h).
#include "an2/cbr/timing.h"

#include <gtest/gtest.h>

#include "an2/base/error.h"

namespace an2 {
namespace {

FrameTiming
sampleTiming()
{
    // 100-slot switch frames, 104-slot controller frames, 1 time unit per
    // slot, 1% clock tolerance, link latency of 5 units.
    return makeFrameTiming(100, 104, 1.0, 0.01, 5.0);
}

TEST(TimingTest, MakeFrameTimingComputesBounds)
{
    FrameTiming t = sampleTiming();
    EXPECT_NEAR(t.f_s_min, 100.0 / 1.01, 1e-9);
    EXPECT_NEAR(t.f_s_max, 100.0 / 0.99, 1e-9);
    EXPECT_NEAR(t.f_c_min, 104.0 / 1.01, 1e-9);
    EXPECT_NEAR(t.f_c_max, 104.0 / 0.99, 1e-9);
    EXPECT_TRUE(t.valid());
}

TEST(TimingTest, InsufficientPaddingRejected)
{
    // 1% tolerance needs > 100 * 2*0.01/0.99 ~ 2.02 padding slots; a
    // controller frame of 102 slots is too short.
    EXPECT_THROW(makeFrameTiming(100, 102, 1.0, 0.01, 5.0), UsageError);
}

TEST(TimingTest, MinControllerPaddingIsSufficientAndTight)
{
    for (double tol : {0.0, 1e-5, 1e-4, 1e-3, 0.01, 0.05}) {
        for (int frame : {10, 100, 1000}) {
            int pad = minControllerPadding(frame, tol);
            EXPECT_GE(pad, 1);
            // Sufficient:
            FrameTiming t =
                makeFrameTiming(frame, frame + pad, 1.0, tol, 0.0);
            EXPECT_TRUE(t.valid());
            // Tight (one less slot fails) whenever tolerance > 0:
            if (tol > 0.0 && pad > 1) {
                EXPECT_THROW(
                    makeFrameTiming(frame, frame + pad - 1, 1.0, tol, 0.0),
                    UsageError);
            }
        }
    }
}

TEST(TimingTest, LatencyBoundFormula)
{
    FrameTiming t = sampleTiming();
    // Formula 3: L <= 2p(F_s-max + l).
    EXPECT_NEAR(latencyBound(t, 3), 2.0 * 3 * (t.f_s_max + 5.0), 1e-9);
    EXPECT_EQ(latencyBound(t, 0), 0.0);
}

TEST(TimingTest, LatencyBoundMonotoneInPathLength)
{
    FrameTiming t = sampleTiming();
    for (int p = 1; p < 10; ++p)
        EXPECT_GT(latencyBound(t, p), latencyBound(t, p - 1));
}

TEST(TimingTest, MaxActiveFramesPositiveAndGrowing)
{
    FrameTiming t = sampleTiming();
    EXPECT_GE(maxActiveFrames(t, 1), 1.0);
    EXPECT_GE(maxActiveFrames(t, 8), maxActiveFrames(t, 1));
}

TEST(TimingTest, BufferBoundAtLeastFourFrames)
{
    // Formula 5 has the additive constant 4; with zero drift the bound is
    // exactly 4 frames' worth per reserved cell.
    FrameTiming t = makeFrameTiming(100, 101, 1.0, 0.0, 5.0);
    EXPECT_NEAR(bufferBound(t, 4), 4.0, 1e-9);

    // With drift, the bound exceeds 4 and grows with path length.
    FrameTiming d = sampleTiming();
    EXPECT_GT(bufferBound(d, 1), 4.0);
    EXPECT_GT(bufferBound(d, 8), bufferBound(d, 1));
}

TEST(TimingTest, PaperScaleParametersGiveSmallBounds)
{
    // AN2-scale: 1000-slot frames (~0.42 ms), 100 ppm clocks, 10 us link
    // latency, 8 hops, 1% controller padding (10 slots). The paper says
    // "four or five frames of buffers are sufficient" for such values;
    // padding beyond the bare minimum is what keeps the bound small.
    double slot_us = 0.424;
    FrameTiming t = makeFrameTiming(1000, 1010, slot_us, 1e-4, 10.0);
    EXPECT_LE(bufferBound(t, 8), 5.0);
    // End-to-end latency bound within ~7 ms for 8 hops.
    EXPECT_LE(latencyBound(t, 8), 7000.0);
}

TEST(TimingTest, InvalidArgumentsRejected)
{
    EXPECT_THROW(makeFrameTiming(0, 10, 1.0, 0.0, 0.0), UsageError);
    EXPECT_THROW(makeFrameTiming(10, 5, 1.0, 0.0, 0.0), UsageError);
    EXPECT_THROW(makeFrameTiming(10, 12, -1.0, 0.0, 0.0), UsageError);
    EXPECT_THROW(makeFrameTiming(10, 12, 1.0, 1.5, 0.0), UsageError);
    EXPECT_THROW(makeFrameTiming(10, 12, 1.0, 0.0, -1.0), UsageError);
    FrameTiming t = sampleTiming();
    EXPECT_THROW(latencyBound(t, -1), UsageError);
    EXPECT_THROW(minControllerPadding(0, 0.01), UsageError);
}

}  // namespace
}  // namespace an2
