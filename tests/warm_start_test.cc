// Tests for warm-started incremental matching (an2/matching/warm_start.h):
// matchings seeded from the previous slot must stay legal and maximal
// under request churn, fault-driven liveness flips, and matrix copies,
// and WarmStart::Off must leave every matcher's decisions untouched.
#include "an2/matching/warm_start.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "an2/base/rng.h"
#include "an2/matching/islip.h"
#include "an2/matching/matcher.h"
#include "an2/matching/pim_fast.h"
#include "an2/matching/request_matrix.h"
#include "an2/matching/serial_greedy.h"
#include "an2/obs/recorder.h"

namespace an2 {
namespace {

// A maximal matching admits no augmenting edge: every requested (i,j)
// with both endpoints free would have been picked up by the repair pass.
void
expectMaximal(const RequestMatrix& req, const Matching& m,
              const std::string& ctx)
{
    std::vector<bool> out_used(static_cast<size_t>(req.numOutputs()), false);
    for (PortId i = 0; i < req.numInputs(); ++i) {
        PortId j = m.outputOf(i);
        if (j != kNoPort)
            out_used[static_cast<size_t>(j)] = true;
    }
    for (PortId i = 0; i < req.numInputs(); ++i) {
        if (m.isInputMatched(i))
            continue;
        for (PortId j = 0; j < req.numOutputs(); ++j) {
            EXPECT_FALSE(req.has(i, j) && !out_used[static_cast<size_t>(j)])
                << ctx << ": unmatched request (" << i << "," << j
                << ") with both ports free";
        }
    }
}

void
expectAvoidsDeadPorts(const RequestMatrix& req, const Matching& m,
                      const std::string& ctx)
{
    for (PortId i = 0; i < req.numInputs(); ++i) {
        PortId j = m.outputOf(i);
        if (j == kNoPort)
            continue;
        EXPECT_TRUE(req.inputLive(i))
            << ctx << ": dead input " << i << " matched";
        EXPECT_TRUE(req.outputLive(j))
            << ctx << ": dead output " << j << " matched";
    }
}

struct WarmConfig
{
    std::string name;
    std::unique_ptr<Matcher> (*make)(WarmStart warm);
    bool maximal;  ///< the matcher guarantees maximality
};

std::vector<WarmConfig>
warmConfigs()
{
    std::vector<WarmConfig> configs;
    configs.push_back({"islip-reference",
                       [](WarmStart w) -> std::unique_ptr<Matcher> {
                           return std::make_unique<IslipMatcher>(
                               4, MatcherBackend::Reference, w);
                       },
                       true});
    configs.push_back({"islip-word",
                       [](WarmStart w) -> std::unique_ptr<Matcher> {
                           return std::make_unique<IslipMatcher>(
                               4, MatcherBackend::WordParallel, w);
                       },
                       true});
    configs.push_back({"greedy-reference",
                       [](WarmStart w) -> std::unique_ptr<Matcher> {
                           return std::make_unique<SerialGreedyMatcher>(
                               true, 7, MatcherBackend::Reference, w);
                       },
                       true});
    configs.push_back({"greedy-word",
                       [](WarmStart w) -> std::unique_ptr<Matcher> {
                           return std::make_unique<SerialGreedyMatcher>(
                               true, 7, MatcherBackend::WordParallel, w);
                       },
                       true});
    // Run-to-completion FastPIM converges to a maximal matching; the
    // fixed-iteration variant may legally stop short.
    configs.push_back({"fastpim-complete",
                       [](WarmStart w) -> std::unique_ptr<Matcher> {
                           return std::make_unique<FastPimMatcher>(0, 11, w);
                       },
                       true});
    configs.push_back({"fastpim-4iter",
                       [](WarmStart w) -> std::unique_ptr<Matcher> {
                           return std::make_unique<FastPimMatcher>(4, 11, w);
                       },
                       false});
    return configs;
}

// Random request churn with mid-run port death and revival: every warm
// matching must be legal, avoid dead ports, and (where guaranteed) be
// maximal — including the slots right after a liveness flip, where any
// stale reused edge would surface.
TEST(WarmStartProperty, LegalAndMaximalUnderChurnAndFaults)
{
    constexpr int kN = 70;  // > one mask word, exercises multi-word paths
    constexpr int kRounds = 160;
    for (const WarmConfig& cfg : warmConfigs()) {
        auto matcher = cfg.make(WarmStart::On);
        RequestMatrix req(kN);
        Matching m(kN);
        Xoshiro256 rng(2026);
        for (int round = 0; round < kRounds; ++round) {
            // Churn ~one request per port per round, removals included.
            for (int t = 0; t < kN; ++t) {
                auto i = static_cast<PortId>(rng.nextBelow(kN));
                auto j = static_cast<PortId>(rng.nextBelow(kN));
                if (rng.nextBernoulli(0.7))
                    req.increment(i, j);
                else if (req.count(i, j) > 0)
                    req.decrement(i, j);
            }
            if (round == 40)
                req.setOutputLive(13, false);  // dies with edges reused
            if (round == 70)
                req.setInputLive(5, false);
            if (round == 100) {
                req.setOutputLive(13, true);
                req.setInputLive(5, true);
            }
            matcher->matchInto(req, m);
            const std::string ctx =
                cfg.name + " round " + std::to_string(round);
            EXPECT_TRUE(m.isLegalFor(req)) << ctx;
            expectAvoidsDeadPorts(req, m, ctx);
            if (cfg.maximal)
                expectMaximal(req, m, ctx);
        }
    }
}

// With no matrix change between slots the warm tier replays the previous
// matching wholesale; the result must be identical edge for edge.
TEST(WarmStartProperty, UnchangedMatrixReplaysIdentically)
{
    constexpr int kN = 40;
    for (const WarmConfig& cfg : warmConfigs()) {
        auto matcher = cfg.make(WarmStart::On);
        Xoshiro256 rng(9);
        RequestMatrix req = RequestMatrix::bernoulli(kN, 0.3, rng);
        Matching first(kN);
        matcher->matchInto(req, first);
        Matching second(kN);
        matcher->matchInto(req, second);
        for (PortId i = 0; i < kN; ++i)
            EXPECT_EQ(second.outputOf(i), first.outputOf(i))
                << cfg.name << " input " << i;
    }
}

#ifndef AN2_OBS_DISABLED
// The full-reuse tier is observable: an unchanged matrix bumps
// warm_start_full_reuses, and the reuse/repair counters account for the
// seeded edges.
TEST(WarmStartProperty, FullReuseCounterFires)
{
    constexpr int kN = 16;
    obs::RecorderConfig rc;
    rc.ports = kN;
    auto rec = std::make_unique<obs::Recorder>(rc);
    obs::attach(rec.get());
    IslipMatcher matcher(4, MatcherBackend::Auto, WarmStart::On);
    Xoshiro256 rng(5);
    RequestMatrix req = RequestMatrix::bernoulli(kN, 0.5, rng);
    Matching m(kN);
    matcher.matchInto(req, m);
    const int64_t full0 = rec->counter(obs::Counter::WarmStartFullReuses);
    matcher.matchInto(req, m);
    EXPECT_EQ(rec->counter(obs::Counter::WarmStartFullReuses), full0 + 1);
    EXPECT_GE(rec->counter(obs::Counter::MatchEdgesReused), m.size());
    obs::detach();
}
#endif

// Copy-assignment may swap in arbitrary content; the conservative
// all-dirty copy semantics must keep the warm matcher off the wholesale
// replay tier, so the matching stays legal for the *new* content.
TEST(WarmStartProperty, CopyAssignedMatrixNeverReplaysStale)
{
    constexpr int kN = 32;
    for (const WarmConfig& cfg : warmConfigs()) {
        auto matcher = cfg.make(WarmStart::On);
        Xoshiro256 rng(17);
        RequestMatrix req = RequestMatrix::bernoulli(kN, 0.4, rng);
        Matching m(kN);
        matcher->matchInto(req, m);
        // Overwrite with a much sparser pattern via copy-assignment (the
        // switch's CBR masking path does exactly this every slot).
        RequestMatrix other = RequestMatrix::bernoulli(kN, 0.05, rng);
        req = other;
        matcher->matchInto(req, m);
        EXPECT_TRUE(m.isLegalFor(req)) << cfg.name;
        if (cfg.maximal)
            expectMaximal(req, m, cfg.name);
    }
}

// WarmStart::Off must be bit-for-bit the matcher it always was: same
// matchings, same internal pointer/PRNG evolution, regardless of backend.
TEST(WarmStartRegression, OffMatchesSeedBehavior)
{
    constexpr int kN = 48;
    constexpr int kRounds = 60;
    struct Pair
    {
        std::unique_ptr<Matcher> off;
        std::unique_ptr<Matcher> legacy;
    };
    std::vector<Pair> pairs;
    pairs.push_back({std::make_unique<IslipMatcher>(
                         4, MatcherBackend::Auto, WarmStart::Off),
                     std::make_unique<IslipMatcher>(4)});
    pairs.push_back({std::make_unique<SerialGreedyMatcher>(
                         true, 3, MatcherBackend::Auto, WarmStart::Off),
                     std::make_unique<SerialGreedyMatcher>(true, 3)});
    pairs.push_back({std::make_unique<FastPimMatcher>(4, 3, WarmStart::Off),
                     std::make_unique<FastPimMatcher>(4, 3)});
    for (Pair& p : pairs) {
        RequestMatrix req(kN);
        Matching a(kN);
        Matching b(kN);
        Xoshiro256 rng(31);
        for (int round = 0; round < kRounds; ++round) {
            for (int t = 0; t < kN / 2; ++t) {
                auto i = static_cast<PortId>(rng.nextBelow(kN));
                auto j = static_cast<PortId>(rng.nextBelow(kN));
                if (rng.nextBernoulli(0.6))
                    req.increment(i, j);
                else if (req.count(i, j) > 0)
                    req.decrement(i, j);
            }
            p.off->matchInto(req, a);
            p.legacy->matchInto(req, b);
            for (PortId i = 0; i < kN; ++i)
                EXPECT_EQ(a.outputOf(i), b.outputOf(i))
                    << p.legacy->name() << " diverged at round " << round
                    << " input " << i;
        }
    }
}

// reset() drops the remembered matching: the next slot must cold-start
// (observable as: still legal/maximal even if the matrix object moved).
TEST(WarmStartProperty, ResetInvalidatesRememberedMatching)
{
    constexpr int kN = 24;
    for (const WarmConfig& cfg : warmConfigs()) {
        auto matcher = cfg.make(WarmStart::On);
        Xoshiro256 rng(23);
        RequestMatrix req = RequestMatrix::bernoulli(kN, 0.4, rng);
        Matching m(kN);
        matcher->matchInto(req, m);
        matcher->reset();
        RequestMatrix fresh = RequestMatrix::bernoulli(kN, 0.4, rng);
        matcher->matchInto(fresh, m);
        EXPECT_TRUE(m.isLegalFor(fresh)) << cfg.name;
        if (cfg.maximal)
            expectMaximal(fresh, m, cfg.name);
    }
}

}  // namespace
}  // namespace an2
