// Unit tests for the word-parallel port-set primitives
// (an2/matching/wordset.h), including randomized equivalence between
// selectBit64 (BMI2 _pdep_u64 when available) and a reference scan.
#include "an2/matching/wordset.h"

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "an2/base/rng.h"

namespace an2 {
namespace {

using namespace wordset;

/** Reference k-th set bit: walk bits in ascending order. */
int
selectBitNaive(uint64_t mask, int k)
{
    for (int b = 0; b < 64; ++b) {
        if ((mask >> b) & 1) {
            if (k == 0)
                return b;
            --k;
        }
    }
    return -1;
}

TEST(WordsetTest, NumWords)
{
    EXPECT_EQ(numWords(1), 1);
    EXPECT_EQ(numWords(64), 1);
    EXPECT_EQ(numWords(65), 2);
    EXPECT_EQ(numWords(128), 2);
    EXPECT_EQ(numWords(1024), 16);
}

TEST(WordsetTest, SelectBit64MatchesNaiveExhaustiveSmall)
{
    for (uint64_t mask = 1; mask < 4096; ++mask)
        for (int k = 0; k < std::popcount(mask); ++k)
            EXPECT_EQ(selectBit64(mask, k), selectBitNaive(mask, k))
                << "mask=" << mask << " k=" << k;
}

TEST(WordsetTest, SelectBit64MatchesNaiveRandomized)
{
    // The BMI2 path (_pdep_u64) and the portable clear-lowest loop must
    // agree on arbitrary masks; the naive scan is the ground truth.
    Xoshiro256 rng(99);
    for (int t = 0; t < 20'000; ++t) {
        uint64_t mask = rng.next64();
        if (t % 3 == 0)
            mask &= rng.next64();  // sparser masks
        if (mask == 0)
            continue;
        int bits = std::popcount(mask);
        int k = static_cast<int>(rng.nextBelow(static_cast<uint64_t>(bits)));
        EXPECT_EQ(selectBit64(mask, k), selectBitNaive(mask, k))
            << "mask=" << mask << " k=" << k;
    }
}

TEST(WordsetTest, SingleBitOps)
{
    std::vector<uint64_t> w(3, 0);
    setBit(w.data(), 0);
    setBit(w.data(), 64);
    setBit(w.data(), 191);
    EXPECT_TRUE(testBit(w.data(), 0));
    EXPECT_TRUE(testBit(w.data(), 64));
    EXPECT_TRUE(testBit(w.data(), 191));
    EXPECT_FALSE(testBit(w.data(), 63));
    EXPECT_EQ(popcountAll(w.data(), 3), 3);
    clearBit(w.data(), 64);
    EXPECT_FALSE(testBit(w.data(), 64));
    EXPECT_EQ(popcountAll(w.data(), 3), 2);
}

TEST(WordsetTest, FillFirstAndBounds)
{
    std::vector<uint64_t> w(2, ~0ULL);
    fillFirst(w.data(), 2, 70);
    EXPECT_EQ(popcountAll(w.data(), 2), 70);
    EXPECT_TRUE(testBit(w.data(), 69));
    EXPECT_FALSE(testBit(w.data(), 70));

    fillFirst(w.data(), 2, 64);  // exact word boundary
    EXPECT_EQ(w[0], ~0ULL);
    EXPECT_EQ(w[1], 0ULL);
}

TEST(WordsetTest, MultiWordSelectAndFirstSet)
{
    std::vector<uint64_t> w(3, 0);
    EXPECT_EQ(firstSet(w.data(), 3), -1);
    setBit(w.data(), 5);
    setBit(w.data(), 70);
    setBit(w.data(), 130);
    EXPECT_EQ(firstSet(w.data(), 3), 5);
    EXPECT_EQ(selectBit(w.data(), 3, 0), 5);
    EXPECT_EQ(selectBit(w.data(), 3, 1), 70);
    EXPECT_EQ(selectBit(w.data(), 3, 2), 130);
}

TEST(WordsetTest, FirstSetAtOrAfterWrapsCircularly)
{
    std::vector<uint64_t> w(2, 0);
    setBit(w.data(), 3);
    setBit(w.data(), 100);
    EXPECT_EQ(firstSetAtOrAfter(w.data(), 2, 128, 0), 3);
    EXPECT_EQ(firstSetAtOrAfter(w.data(), 2, 128, 3), 3);
    EXPECT_EQ(firstSetAtOrAfter(w.data(), 2, 128, 4), 100);
    EXPECT_EQ(firstSetAtOrAfter(w.data(), 2, 128, 100), 100);
    EXPECT_EQ(firstSetAtOrAfter(w.data(), 2, 128, 101), 3);  // wrap
    std::vector<uint64_t> empty(2, 0);
    EXPECT_EQ(firstSetAtOrAfter(empty.data(), 2, 128, 7), -1);
}

TEST(WordsetTest, FirstSetAtOrAfterMatchesMinCircularDistance)
{
    // The primitive must agree with the scalar "minimum circular
    // distance from the pointer" rule used by iSLIP and RR accept.
    Xoshiro256 rng(123);
    const int bits = 150;
    const int nw = numWords(bits);
    std::vector<uint64_t> w(static_cast<size_t>(nw));
    for (int t = 0; t < 2000; ++t) {
        clearAll(w.data(), nw);
        int set = 1 + static_cast<int>(rng.nextBelow(8));
        for (int s = 0; s < set; ++s)
            setBit(w.data(), static_cast<int>(
                                 rng.nextBelow(static_cast<uint64_t>(bits))));
        int ptr = static_cast<int>(rng.nextBelow(static_cast<uint64_t>(bits)));
        int best = -1;
        int best_dist = bits;
        for (int b = 0; b < bits; ++b) {
            if (!testBit(w.data(), b))
                continue;
            int dist = (b - ptr + bits) % bits;
            if (dist < best_dist) {
                best_dist = dist;
                best = b;
            }
        }
        EXPECT_EQ(firstSetAtOrAfter(w.data(), nw, bits, ptr), best);
    }
}

TEST(WordsetTest, ForEachSetAscending)
{
    std::vector<uint64_t> w(2, 0);
    setBit(w.data(), 1);
    setBit(w.data(), 63);
    setBit(w.data(), 64);
    setBit(w.data(), 127);
    std::vector<int> seen;
    forEachSet(w.data(), 2, [&](int b) { seen.push_back(b); });
    EXPECT_EQ(seen, (std::vector<int>{1, 63, 64, 127}));
}

}  // namespace
}  // namespace an2
