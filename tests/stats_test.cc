// Tests for statistics collection (an2/base/stats.h).
#include "an2/base/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace an2 {
namespace {

TEST(RunningStatsTest, EmptyDefaults)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_TRUE(std::isinf(s.min()));
    EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStatsTest, MatchesDirectComputation)
{
    std::vector<double> xs = {1.0, 4.0, 4.0, 7.5, -2.0, 10.0, 3.25};
    RunningStats s;
    for (double x : xs)
        s.add(x);
    double mean = 0.0;
    for (double x : xs)
        mean += x;
    mean /= static_cast<double>(xs.size());
    double var = 0.0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= static_cast<double>(xs.size() - 1);

    EXPECT_EQ(s.count(), static_cast<int64_t>(xs.size()));
    EXPECT_NEAR(s.mean(), mean, 1e-12);
    EXPECT_NEAR(s.variance(), var, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
    EXPECT_EQ(s.min(), -2.0);
    EXPECT_EQ(s.max(), 10.0);
    EXPECT_NEAR(s.sum(), mean * static_cast<double>(xs.size()), 1e-9);
}

TEST(RunningStatsTest, SingleSampleVarianceZero)
{
    RunningStats s;
    s.add(5.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.mean(), 5.0);
}

TEST(RunningStatsTest, MergeEqualsCombinedStream)
{
    RunningStats a;
    RunningStats b;
    RunningStats all;
    for (int i = 0; i < 100; ++i) {
        double x = std::sin(i) * 10.0;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides)
{
    RunningStats a;
    RunningStats empty;
    a.add(1.0);
    a.add(3.0);
    RunningStats c = a;
    c.merge(empty);
    EXPECT_EQ(c.count(), 2);
    EXPECT_NEAR(c.mean(), 2.0, 1e-12);
    RunningStats d = empty;
    d.merge(a);
    EXPECT_EQ(d.count(), 2);
    EXPECT_NEAR(d.mean(), 2.0, 1e-12);
}

TEST(HistogramTest, RejectsBadConstruction)
{
    EXPECT_THROW(Histogram(0.0, 10), UsageError);
    EXPECT_THROW(Histogram(1.0, 0), UsageError);
}

TEST(HistogramTest, BinsAndOverflow)
{
    Histogram h(2.0, 3);  // bins [0,2) [2,4) [4,6), overflow beyond
    h.add(0.5);
    h.add(1.9);
    h.add(2.0);
    h.add(5.9);
    h.add(6.0);
    h.add(100.0);
    EXPECT_EQ(h.count(), 6);
    EXPECT_EQ(h.binCount(0), 2);
    EXPECT_EQ(h.binCount(1), 1);
    EXPECT_EQ(h.binCount(2), 1);
    EXPECT_EQ(h.overflowCount(), 2);
}

TEST(HistogramTest, NegativeSamplesClampToFirstBin)
{
    Histogram h(1.0, 4);
    h.add(-3.0);
    EXPECT_EQ(h.binCount(0), 1);
}

TEST(HistogramTest, QuantileInterpolates)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i));
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
    EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
    EXPECT_NEAR(h.quantile(1.0), 100.0, 1.0);
}

TEST(HistogramTest, QuantileInOverflowReturnsBucketLowerBound)
{
    Histogram h(1.0, 4);  // regular range [0, 4), overflow beyond
    h.add(0.5);
    h.add(1.5);
    h.add(50.0);
    h.add(60.0);
    // The median is still among the regular samples...
    EXPECT_NEAR(h.quantile(0.5), 2.0, 1e-12);
    // ...but any quantile past them is saturated and must report the
    // overflow bucket's lower bound, not an interpolated last-bin value.
    EXPECT_DOUBLE_EQ(h.quantile(0.75), 4.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
    EXPECT_EQ(h.overflowCount(), 2);
}

TEST(HistogramTest, AllSamplesOverflowing)
{
    Histogram h(2.0, 3);  // regular range [0, 6)
    h.add(10.0);
    h.add(20.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.01), 6.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 6.0);
    EXPECT_EQ(h.overflowCount(), 2);
}

TEST(HistogramTest, QuantileOfEmptyThrows)
{
    Histogram h(1.0, 4);
    EXPECT_THROW(h.quantile(0.5), UsageError);
}

TEST(HistogramTest, QuantileRangeChecked)
{
    Histogram h(1.0, 4);
    h.add(1.0);
    EXPECT_THROW(h.quantile(-0.1), UsageError);
    EXPECT_THROW(h.quantile(1.1), UsageError);
}

TEST(JainIndexTest, PerfectFairnessIsOne)
{
    EXPECT_DOUBLE_EQ(jainFairnessIndex({5.0, 5.0, 5.0, 5.0}), 1.0);
}

TEST(JainIndexTest, MaximallyUnfairIsOneOverN)
{
    EXPECT_NEAR(jainFairnessIndex({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(JainIndexTest, EmptyAndZeroAreFair)
{
    EXPECT_DOUBLE_EQ(jainFairnessIndex({}), 1.0);
    EXPECT_DOUBLE_EQ(jainFairnessIndex({0.0, 0.0}), 1.0);
}

TEST(JainIndexTest, KnownMixedValue)
{
    // (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
    EXPECT_NEAR(jainFairnessIndex({1.0, 2.0, 3.0}), 36.0 / 42.0, 1e-12);
}

}  // namespace
}  // namespace an2
