// Tests for windowed FIFO contention resolution
// (an2/matching/windowed_fifo.h).
#include "an2/matching/windowed_fifo.h"

#include <gtest/gtest.h>

namespace an2 {
namespace {

TEST(WindowedFifoTest, EmptyQueuesNoMatch)
{
    Xoshiro256 rng(1);
    std::vector<std::vector<PortId>> dests(4);
    auto res = windowedFifoMatch(dests, 4, 1, rng);
    EXPECT_EQ(res.matching.size(), 0);
    for (int p : res.positions)
        EXPECT_EQ(p, -1);
}

TEST(WindowedFifoTest, SingleRoundServesOnlyHeads)
{
    Xoshiro256 rng(2);
    // Input 0's head wants output 0; input 1's head also wants output 0
    // but has output 1 second in queue. With one round, the loser cannot
    // reach its second cell.
    std::vector<std::vector<PortId>> dests = {{0}, {0, 1}};
    int served_second = 0;
    for (int t = 0; t < 200; ++t) {
        auto res = windowedFifoMatch(dests, 2, 1, rng);
        EXPECT_EQ(res.matching.size(), 1);  // HOL blocking
        if (res.positions[1] == 1)
            ++served_second;
    }
    EXPECT_EQ(served_second, 0);
}

TEST(WindowedFifoTest, SecondRoundRelievesHolBlocking)
{
    Xoshiro256 rng(3);
    std::vector<std::vector<PortId>> dests = {{0}, {0, 1}};
    int both_served = 0;
    for (int t = 0; t < 200; ++t) {
        auto res = windowedFifoMatch(dests, 2, 2, rng);
        if (res.matching.size() == 2)
            ++both_served;
    }
    // Whenever input 1 loses round one (about half the time) it wins
    // output 1 in round two; when it wins round one, input 0 is blocked.
    EXPECT_GT(both_served, 50);
}

TEST(WindowedFifoTest, PositionsIdentifyServedCell)
{
    Xoshiro256 rng(4);
    std::vector<std::vector<PortId>> dests = {{3, 2, 1}};
    auto res = windowedFifoMatch(dests, 4, 3, rng);
    ASSERT_EQ(res.matching.size(), 1);
    EXPECT_EQ(res.positions[0], 0);  // head always wins uncontended
    EXPECT_EQ(res.matching.outputOf(0), 3);
}

TEST(WindowedFifoTest, ContentionWinnerUniform)
{
    Xoshiro256 rng(5);
    std::vector<std::vector<PortId>> dests = {{0}, {0}, {0}};
    std::vector<int> wins(3, 0);
    constexpr int kTrials = 30000;
    for (int t = 0; t < kTrials; ++t) {
        auto res = windowedFifoMatch(dests, 1, 1, rng);
        ASSERT_EQ(res.matching.size(), 1);
        ++wins[static_cast<size_t>(res.matching.inputOf(0))];
    }
    for (int w : wins)
        EXPECT_NEAR(w / static_cast<double>(kTrials), 1.0 / 3, 0.02);
}

TEST(WindowedFifoTest, ClaimedOutputSkippedInLaterRounds)
{
    Xoshiro256 rng(6);
    // Input 0 takes output 0 in round one (uncontended). Input 1's queue
    // is [0, 1]: it loses output 0, then must win output 1 in round two.
    std::vector<std::vector<PortId>> dests = {{0}, {0, 1}};
    bool saw_skip = false;
    for (int t = 0; t < 100; ++t) {
        auto res = windowedFifoMatch(dests, 2, 2, rng);
        if (res.matching.inputOf(0) == 0 && res.matching.outputOf(1) == 1) {
            EXPECT_EQ(res.positions[1], 1);
            saw_skip = true;
        }
    }
    EXPECT_TRUE(saw_skip);
}

TEST(WindowedFifoTest, MatchingAlwaysConflictFree)
{
    Xoshiro256 rng(7);
    Xoshiro256 pattern_rng(8);
    for (int t = 0; t < 100; ++t) {
        std::vector<std::vector<PortId>> dests(8);
        for (auto& q : dests) {
            auto len = pattern_rng.nextBelow(5);
            for (uint64_t k = 0; k < len; ++k)
                q.push_back(static_cast<PortId>(pattern_rng.nextBelow(8)));
        }
        auto res = windowedFifoMatch(dests, 8, 3, rng);
        // positions consistent with matching, no duplicate outputs.
        std::vector<int> out_used(8, 0);
        for (PortId i = 0; i < 8; ++i) {
            PortId j = res.matching.outputOf(i);
            if (j == kNoPort) {
                EXPECT_EQ(res.positions[static_cast<size_t>(i)], -1);
                continue;
            }
            int pos = res.positions[static_cast<size_t>(i)];
            ASSERT_GE(pos, 0);
            ASSERT_LT(pos, static_cast<int>(dests[static_cast<size_t>(i)]
                                                .size()));
            EXPECT_EQ(dests[static_cast<size_t>(i)][static_cast<size_t>(pos)],
                      j);
            ++out_used[static_cast<size_t>(j)];
        }
        for (int u : out_used)
            EXPECT_LE(u, 1);
    }
}

TEST(WindowedFifoTest, InvalidArgumentsRejected)
{
    Xoshiro256 rng(9);
    std::vector<std::vector<PortId>> dests = {{0}};
    EXPECT_THROW(windowedFifoMatch({}, 2, 1, rng), UsageError);
    EXPECT_THROW(windowedFifoMatch(dests, 0, 1, rng), UsageError);
    EXPECT_THROW(windowedFifoMatch(dests, 2, 0, rng), UsageError);
    std::vector<std::vector<PortId>> bad = {{5}};
    EXPECT_THROW(windowedFifoMatch(bad, 2, 1, rng), UsageError);
}

}  // namespace
}  // namespace an2
