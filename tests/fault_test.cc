// Tests for the fault-injection subsystem (an2/fault/): plan parsing,
// deterministic injection, graceful degradation of every switch model,
// CBR schedule repair, the invariant checker, and link outages.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "an2/base/error.h"
#include "an2/cbr/admission.h"
#include "an2/cbr/slepian_duguid.h"
#include "an2/fault/cbr_repair.h"
#include "an2/fault/fault_plan.h"
#include "an2/fault/injector.h"
#include "an2/fault/invariants.h"
#include "an2/matching/matching.h"
#include "an2/matching/pim.h"
#include "an2/matching/request_matrix.h"
#include "an2/network/link.h"
#include "an2/sim/fifo_switch.h"
#include "an2/sim/iq_switch.h"
#include "an2/sim/oq_switch.h"
#include "an2/sim/simulator.h"
#include "an2/sim/traffic.h"

namespace an2 {
namespace {

using fault::CbrRepairEngine;
using fault::FaultEvent;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using fault::InvariantChecker;

std::unique_ptr<Matcher>
pim(int iterations = 4, uint64_t seed = 1)
{
    PimConfig cfg;
    cfg.iterations = iterations;
    cfg.seed = seed;
    return std::make_unique<PimMatcher>(cfg);
}

Cell
vbrCell(PortId in, PortId out, FlowId flow = 0, int64_t seq = 0)
{
    Cell c;
    c.flow = flow;
    c.input = in;
    c.output = out;
    c.seq = seq;
    return c;
}

// ---------------------------------------------------------------------------
// FaultPlan parsing

TEST(FaultPlanTest, ParsesAndRoundTrips)
{
    const std::string spec =
        "out_down(3)@4000,out_up(3)@8000,in_down(0)@100,link_down(2)@50,"
        "link_up(2)@60,drop(0.001),corrupt(0.0005)";
    FaultPlan plan = FaultPlan::parse(spec);
    EXPECT_EQ(plan.events.size(), 5u);
    EXPECT_DOUBLE_EQ(plan.drop_prob, 0.001);
    EXPECT_DOUBLE_EQ(plan.corrupt_prob, 0.0005);
    EXPECT_TRUE(plan.probabilistic());
    EXPECT_FALSE(plan.empty());
    EXPECT_EQ(plan.maxPortTarget(), 3);
    EXPECT_EQ(plan.maxLinkTarget(), 2);

    // Events are sorted by slot.
    for (size_t i = 1; i < plan.events.size(); ++i)
        EXPECT_LE(plan.events[i - 1].slot, plan.events[i].slot);

    // The canonical string re-parses to the same plan.
    FaultPlan again = FaultPlan::parse(plan.str());
    EXPECT_EQ(again.str(), plan.str());
    EXPECT_EQ(again.events.size(), plan.events.size());
}

TEST(FaultPlanTest, EmptySpecIsEmptyPlan)
{
    FaultPlan plan = FaultPlan::parse("");
    EXPECT_TRUE(plan.empty());
    EXPECT_FALSE(plan.probabilistic());
    EXPECT_EQ(plan.maxPortTarget(), -1);
    EXPECT_EQ(plan.maxLinkTarget(), -1);
}

TEST(FaultPlanTest, ErrorsNameTheOffendingToken)
{
    auto expectError = [](const std::string& spec, const std::string& token) {
        try {
            FaultPlan::parse(spec);
            FAIL() << "parse accepted: " << spec;
        } catch (const UsageError& e) {
            EXPECT_NE(std::string(e.what()).find(token), std::string::npos)
                << "error for '" << spec << "' does not name '" << token
                << "': " << e.what();
        }
    };
    expectError("bogus(1)@5", "bogus(1)@5");
    expectError("out_down(1)", "out_down(1)");          // missing @slot
    expectError("out_down(x)@5", "out_down(x)@5");      // bad target
    expectError("out_down(1)@x", "out_down(1)@x");      // bad slot
    expectError("drop(1.5)", "drop(1.5)");              // prob out of range
    expectError("drop(nan)", "drop(nan)");              // non-finite prob
    expectError("out_down(1)@5,,out_up(1)@9", ",,");    // empty token
    expectError("drop(0.1)@5", "drop(0.1)@5");          // modes take no slot
}

TEST(FaultPlanTest, ValidatePortsRejectsOutOfRange)
{
    FaultPlan plan = FaultPlan::parse("out_down(7)@10");
    EXPECT_NO_THROW(plan.validatePorts(8));
    EXPECT_THROW(plan.validatePorts(4), UsageError);
    // Link targets are not ports; a link-only plan passes any size.
    EXPECT_NO_THROW(FaultPlan::parse("link_down(9)@1").validatePorts(2));
}

// ---------------------------------------------------------------------------
// FaultInjector

TEST(FaultInjectorTest, AppliesScriptedEventsAtTheirSlots)
{
    FaultPlan plan = FaultPlan::parse("in_down(1)@10,out_down(2)@10,"
                                      "in_up(1)@20,link_down(0)@15");
    FaultInjector inj(4, plan, 42);
    EXPECT_TRUE(inj.inputLive(1));

    inj.beginSlot(9);
    EXPECT_TRUE(inj.inputLive(1));
    EXPECT_EQ(inj.eventsApplied(), 0);

    inj.beginSlot(10);
    EXPECT_FALSE(inj.inputLive(1));
    EXPECT_FALSE(inj.outputLive(2));
    EXPECT_TRUE(inj.linkUp(0));
    EXPECT_EQ(inj.deadInputs(), 1);
    EXPECT_EQ(inj.deadOutputs(), 1);

    inj.beginSlot(15);
    EXPECT_FALSE(inj.linkUp(0));

    inj.beginSlot(20);
    EXPECT_TRUE(inj.inputLive(1));
    EXPECT_EQ(inj.deadInputs(), 0);
    EXPECT_EQ(inj.eventsApplied(), 4);
}

TEST(FaultInjectorTest, DeadPortArrivalsDrop)
{
    FaultPlan plan = FaultPlan::parse("in_down(0)@0,out_down(3)@0");
    FaultInjector inj(4, plan, 1);
    inj.beginSlot(0);
    EXPECT_EQ(inj.classifyArrival(vbrCell(0, 1)),
              FaultInjector::Verdict::Drop);  // dead input
    EXPECT_EQ(inj.classifyArrival(vbrCell(1, 3)),
              FaultInjector::Verdict::Drop);  // dead output
    EXPECT_EQ(inj.classifyArrival(vbrCell(1, 2)),
              FaultInjector::Verdict::Deliver);
    EXPECT_EQ(inj.cellsDropped(), 2);
}

TEST(FaultInjectorTest, VerdictSequenceIsSeedDeterministic)
{
    FaultPlan plan = FaultPlan::parse("drop(0.3),corrupt(0.2)");
    FaultInjector a(4, plan, 123);
    FaultInjector b(4, plan, 123);
    FaultInjector c(4, plan, 456);
    a.beginSlot(0);
    b.beginSlot(0);
    c.beginSlot(0);
    bool any_difference_from_c = false;
    for (int k = 0; k < 200; ++k) {
        Cell cell = vbrCell(k % 4, (k + 1) % 4);
        auto va = a.classifyArrival(cell);
        EXPECT_EQ(va, b.classifyArrival(cell)) << "draw " << k;
        if (va != c.classifyArrival(cell))
            any_difference_from_c = true;
    }
    EXPECT_TRUE(any_difference_from_c);
    EXPECT_GT(a.cellsDropped(), 0);
    EXPECT_GT(a.cellsCorrupted(), 0);
}

TEST(FaultInjectorTest, ListenersSeeTransitionsAndSlotWork)
{
    struct Spy final : fault::FaultListener
    {
        int downs = 0, ups = 0, link_downs = 0, slots = 0;
        void onPortDown(bool, PortId, SlotTime) override { ++downs; }
        void onPortUp(bool, PortId, SlotTime) override { ++ups; }
        void onLinkDown(int, SlotTime) override { ++link_downs; }
        void slotWork(SlotTime) override { ++slots; }
    };
    Spy spy;
    FaultPlan plan = FaultPlan::parse("out_down(1)@1,out_up(1)@3,"
                                      "link_down(0)@2");
    FaultInjector inj(4, plan, 7);
    inj.addListener(&spy);
    for (SlotTime s = 0; s < 5; ++s)
        inj.beginSlot(s);
    EXPECT_EQ(spy.downs, 1);
    EXPECT_EQ(spy.ups, 1);
    EXPECT_EQ(spy.link_downs, 1);
    EXPECT_EQ(spy.slots, 5);
}

// ---------------------------------------------------------------------------
// Switch models under port failures

TEST(IqSwitchFaultTest, DeadOutputDropsNewArrivalsAndHoldsQueued)
{
    InputQueuedSwitch sw({.n = 4}, pim());
    // Two cells queued for output 1 before the failure.
    sw.acceptCell(vbrCell(0, 1, 0, 0));
    sw.acceptCell(vbrCell(2, 1, 1, 0));

    sw.setOutputPortLive(1, false);
    EXPECT_FALSE(sw.outputPortLive(1));

    // Arrivals for the dead output are dropped and counted.
    sw.acceptCell(vbrCell(3, 1, 2, 0));
    EXPECT_EQ(sw.droppedCells(), 1);
    EXPECT_EQ(sw.bufferedCells(), 2);

    // The queued cells stay buffered: nothing can be forwarded to 1.
    for (SlotTime s = 0; s < 5; ++s) {
        const auto& departed = sw.runSlot(s);
        for (const Cell& c : departed)
            EXPECT_NE(c.output, 1);
    }
    EXPECT_EQ(sw.bufferedCells(), 2);

    // Revival re-exposes the queued requests; both cells drain.
    sw.setOutputPortLive(1, true);
    int drained = 0;
    for (SlotTime s = 5; s < 10; ++s)
        drained += static_cast<int>(sw.runSlot(s).size());
    EXPECT_EQ(drained, 2);
    EXPECT_EQ(sw.bufferedCells(), 0);
    EXPECT_EQ(sw.invariants().accepted(), 2);
    EXPECT_EQ(sw.invariants().departed(), 2);
    EXPECT_EQ(sw.invariants().dropped(), 1);
}

TEST(IqSwitchFaultTest, DeadInputDropsArrivals)
{
    InputQueuedSwitch sw({.n = 4}, pim());
    sw.setInputPortLive(2, false);
    sw.acceptCell(vbrCell(2, 0));
    EXPECT_EQ(sw.droppedCells(), 1);
    EXPECT_EQ(sw.bufferedCells(), 0);
    sw.acceptCell(vbrCell(1, 0));
    EXPECT_EQ(sw.runSlot(0).size(), 1u);
}

TEST(IqSwitchFaultTest, PipelinedMatchingSkipsPortsKilledMidPipeline)
{
    // Pipelined mode computes slot t+1's matching during slot t. Kill a
    // port between the two: the stale pairing must not be applied.
    InputQueuedSwitch sw({.n = 4, .pipelined = true}, pim());
    sw.acceptCell(vbrCell(0, 1));
    sw.runSlot(0);  // computes the (0 -> 1) pairing for slot 1
    sw.setOutputPortLive(1, false);
    EXPECT_EQ(sw.runSlot(1).size(), 0u);  // stale pairing suppressed
    sw.setOutputPortLive(1, true);
    int drained = 0;
    for (SlotTime s = 2; s < 6; ++s)
        drained += static_cast<int>(sw.runSlot(s).size());
    EXPECT_EQ(drained, 1);
}

TEST(FifoSwitchFaultTest, DeadOutputBlocksHeadOfLine)
{
    FifoSwitch sw(4, /*seed=*/9, /*window=*/2);
    // Queue both cells, then kill the head's output: the head cannot be
    // served and blocks the cell behind it (FIFO HOL semantics extend to
    // failures — even with window 2 the exposure stops at the dead cell).
    sw.acceptCell(vbrCell(0, 2, 0, 0));
    sw.acceptCell(vbrCell(0, 1, 1, 0));
    sw.setOutputPortLive(2, false);
    EXPECT_EQ(sw.runSlot(0).size(), 0u);
    EXPECT_EQ(sw.bufferedCells(), 2);
    sw.setOutputPortLive(2, true);
    int drained = 0;
    for (SlotTime s = 1; s < 4; ++s)
        drained += static_cast<int>(sw.runSlot(s).size());
    EXPECT_EQ(drained, 2);
}

TEST(FifoSwitchFaultTest, DeadInputDropsAndCounts)
{
    FifoSwitch sw(4, 9);
    sw.setInputPortLive(0, false);
    sw.acceptCell(vbrCell(0, 1));
    EXPECT_EQ(sw.droppedCells(), 1);
    EXPECT_EQ(sw.invariants().dropped(), 1);
    EXPECT_EQ(sw.bufferedCells(), 0);
}

TEST(OqSwitchFaultTest, DeadOutputHoldsQueueUntilRevival)
{
    OutputQueuedSwitch sw(4);
    sw.acceptCell(vbrCell(0, 2, 0, 0));
    sw.setOutputPortLive(2, false);
    sw.acceptCell(vbrCell(1, 2, 1, 0));  // dropped: dead output
    EXPECT_EQ(sw.droppedCells(), 1);
    EXPECT_EQ(sw.runSlot(0).size(), 0u);  // queue held
    EXPECT_EQ(sw.bufferedCells(), 1);
    sw.setOutputPortLive(2, true);
    EXPECT_EQ(sw.runSlot(1).size(), 1u);
    EXPECT_EQ(sw.bufferedCells(), 0);
}

// ---------------------------------------------------------------------------
// Simulator integration

SimResult
runFaultedSim(uint64_t traffic_seed, uint64_t fault_seed)
{
    InputQueuedSwitch sw({.n = 8}, pim(4, 11));
    UniformTraffic traffic(8, 0.8, traffic_seed);
    FaultPlan plan = FaultPlan::parse(
        "out_down(3)@500,out_up(3)@900,in_down(5)@600,in_up(5)@800,"
        "drop(0.01),corrupt(0.005)");
    FaultInjector inj(8, plan, fault_seed);
    SimConfig cfg;
    cfg.slots = 2000;
    cfg.warmup = 100;
    cfg.faults = &inj;
    return runSimulation(sw, traffic, cfg);
}

TEST(SimulatorFaultTest, AccountsAllLossesAndConserves)
{
    SimResult r = runFaultedSim(21, 22);
    EXPECT_GT(r.fault_dropped, 0);
    EXPECT_GT(r.fault_corrupted, 0);
    EXPECT_GT(r.delivered, 0);
    // runSimulation's internal conservation assert covers
    // injected == delivered + buffered + all losses; reaching here
    // means it held for the full faulted run.
}

TEST(SimulatorFaultTest, ReplaysByteIdentically)
{
    SimResult a = runFaultedSim(21, 22);
    SimResult b = runFaultedSim(21, 22);
    EXPECT_EQ(a.injected, b.injected);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.fault_dropped, b.fault_dropped);
    EXPECT_EQ(a.fault_corrupted, b.fault_corrupted);
    EXPECT_EQ(a.switch_dropped, b.switch_dropped);
    EXPECT_DOUBLE_EQ(a.mean_delay, b.mean_delay);

    SimResult c = runFaultedSim(21, 23);  // different fault seed
    EXPECT_NE(a.fault_dropped, c.fault_dropped);
}

// ---------------------------------------------------------------------------
// Invariant checker

TEST(InvariantCheckerTest, ConservationLedger)
{
    InvariantChecker chk;
    chk.noteAccepted();
    chk.noteAccepted();
    chk.noteDropped();
    chk.noteDeparted(1);
    EXPECT_NO_THROW(chk.checkConservation(1, "test"));
    EXPECT_THROW(chk.checkConservation(0, "test"), InternalError);
}

TEST(InvariantCheckerTest, MatchingLegalityAgainstLiveMasks)
{
    RequestMatrix req(4);
    req.set(0, 1, 1);
    req.set(2, 3, 1);
    Matching m(4);
    m.add(0, 1);
    m.add(2, 3);
    EXPECT_NO_THROW(InvariantChecker::checkMatchingLive(m, req, "test"));

    // Killing output 1 hides (0,1); the same matching is now illegal.
    req.setOutputLive(1, false);
    EXPECT_THROW(InvariantChecker::checkMatchingLive(m, req, "test"),
                 InternalError);
}

TEST(InvariantCheckerTest, MatchingAvoidsDeadMasks)
{
    Matching m(4);
    m.add(0, 1);
    std::vector<uint64_t> dead_in(1, 0), dead_out(1, 0);
    EXPECT_NO_THROW(InvariantChecker::checkMatchingAvoidsDead(
        m, dead_in.data(), dead_out.data(), "test"));
    dead_out[0] = 1ull << 1;  // output 1 dead
    EXPECT_THROW(InvariantChecker::checkMatchingAvoidsDead(
                     m, dead_in.data(), dead_out.data(), "test"),
                 InternalError);
}

// ---------------------------------------------------------------------------
// Network links

TEST(NetLinkFaultTest, DownedLinkLosesInFlightAndNewCells)
{
    NetLink link(/*latency_ps=*/1000);
    link.send(vbrCell(0, 1), 0);
    link.send(vbrCell(0, 2), 10);
    EXPECT_EQ(link.inFlight(), 2);

    link.setUp(false);
    EXPECT_FALSE(link.isUp());
    EXPECT_EQ(link.inFlight(), 0);  // photons gone
    EXPECT_EQ(link.cellsLost(), 2);

    link.send(vbrCell(0, 3), 20);  // sent into the void
    EXPECT_EQ(link.cellsLost(), 3);
    EXPECT_TRUE(link.deliverUpTo(1'000'000).empty());

    link.setUp(true);
    link.send(vbrCell(0, 4), 30);
    EXPECT_EQ(link.deliverUpTo(2000).size(), 1u);
    EXPECT_EQ(link.cellsCarried(), 3);  // two lost in flight still carried
}

// ---------------------------------------------------------------------------
// CBR schedule repair

TEST(CbrRepairTest, PortDownRevokesAndPortUpRebooksAll)
{
    const int n = 4, frame = 8;
    SlepianDuguidScheduler sched(n, frame);
    AdmissionController adm(frame);
    CbrRepairEngine eng(sched, adm, n, /*ops_per_slot=*/1);

    ASSERT_TRUE(eng.book(0, 1, 2));
    ASSERT_TRUE(eng.book(2, 1, 3));
    ASSERT_TRUE(eng.book(3, 2, 1));
    EXPECT_EQ(eng.placedBookings(), 3);
    EXPECT_TRUE(eng.fullyRepaired());

    // Output 1 dies: both bookings through it are revoked immediately,
    // their admission capacity freed; the (3,2) booking is untouched.
    eng.onPortDown(/*is_input=*/false, 1, /*slot=*/100);
    EXPECT_EQ(eng.placedBookings(), 1);
    EXPECT_EQ(eng.stats().revoked, 2);
    EXPECT_EQ(adm.committed(eng.outputLink(1)), 0);
    EXPECT_TRUE(eng.fullyRepaired());  // dead-port bookings aren't owed

    // Revival: with a budget of 1 op/slot the two bookings re-place
    // over two slots; latency = 2 slots.
    eng.onPortUp(false, 1, 200);
    EXPECT_TRUE(eng.repairPending());
    eng.slotWork(200);
    EXPECT_EQ(eng.placedBookings(), 2);
    eng.slotWork(201);
    EXPECT_EQ(eng.placedBookings(), 3);
    EXPECT_FALSE(eng.repairPending());
    EXPECT_TRUE(eng.fullyRepaired());
    EXPECT_EQ(eng.stats().rebooked, 2);
    EXPECT_EQ(eng.stats().last_repair_latency, 2);
    EXPECT_EQ(eng.stats().max_repair_latency, 2);
    EXPECT_TRUE(sched.schedule().realizes(sched.reservations()));
}

TEST(CbrRepairTest, RebookFailsWhenCapacityWasTaken)
{
    const int n = 4, frame = 4;
    SlepianDuguidScheduler sched(n, frame);
    AdmissionController adm(frame);
    CbrRepairEngine eng(sched, adm, n, 4);

    ASSERT_TRUE(eng.book(0, 1, 3));
    eng.onPortDown(false, 1, 10);
    EXPECT_EQ(eng.placedBookings(), 0);

    // While output 1 is down, someone else claims most of its capacity.
    std::vector<LinkId> path{eng.inputLink(2), eng.outputLink(1)};
    ASSERT_TRUE(adm.admit(path, 2));

    eng.onPortUp(false, 1, 20);
    eng.slotWork(20);
    EXPECT_EQ(eng.placedBookings(), 0);
    EXPECT_EQ(eng.stats().rebook_failed, 1);
    EXPECT_FALSE(eng.repairPending());  // nothing feasible left
    EXPECT_TRUE(eng.fullyRepaired());   // failed bookings aren't retried

    // Capacity returns and the port cycles again: the booking re-places.
    adm.release(path, 2);
    eng.onPortDown(false, 1, 30);
    eng.onPortUp(false, 1, 40);
    eng.slotWork(40);
    EXPECT_EQ(eng.placedBookings(), 1);
    EXPECT_EQ(eng.stats().rebooked, 1);
}

TEST(CbrRepairTest, DrivenThroughInjectorMeasuresLatency)
{
    const int n = 4, frame = 8;
    SlepianDuguidScheduler sched(n, frame);
    AdmissionController adm(frame);
    CbrRepairEngine eng(sched, adm, n, 1);
    ASSERT_TRUE(eng.book(0, 1, 1));
    ASSERT_TRUE(eng.book(2, 1, 1));
    ASSERT_TRUE(eng.book(3, 1, 1));

    FaultPlan plan = FaultPlan::parse("out_down(1)@10,out_up(1)@20");
    FaultInjector inj(n, plan, 5);
    inj.addListener(&eng);
    for (SlotTime s = 0; s < 30; ++s)
        inj.beginSlot(s);

    EXPECT_EQ(eng.stats().revoked, 3);
    EXPECT_EQ(eng.stats().rebooked, 3);
    EXPECT_EQ(eng.placedBookings(), 3);
    // Revival at slot 20, budget 1/slot, 3 bookings -> done at slot 22.
    EXPECT_EQ(eng.stats().last_repair_latency, 3);
}

}  // namespace
}  // namespace an2
