// Tests for the sequential greedy baseline (an2/matching/serial_greedy.h).
#include "an2/matching/serial_greedy.h"

#include <gtest/gtest.h>

#include "an2/matching/hopcroft_karp.h"

namespace an2 {
namespace {

TEST(GreedyTest, AlwaysMaximalAndLegal)
{
    SerialGreedyMatcher greedy(true, 5);
    Xoshiro256 rng(2);
    for (int t = 0; t < 100; ++t) {
        auto req = RequestMatrix::bernoulli(16, 0.3, rng);
        Matching m = greedy.match(req);
        EXPECT_TRUE(m.isLegalFor(req));
        EXPECT_TRUE(m.isMaximalFor(req));
    }
}

TEST(GreedyTest, FixedOrderDeterministic)
{
    SerialGreedyMatcher a(false);
    SerialGreedyMatcher b(false);
    Xoshiro256 rng(3);
    auto req = RequestMatrix::bernoulli(8, 0.5, rng);
    Matching ma = a.match(req);
    Matching mb = b.match(req);
    for (PortId i = 0; i < 8; ++i)
        EXPECT_EQ(ma.outputOf(i), mb.outputOf(i));
}

TEST(GreedyTest, FixedOrderPrefersLowestIndices)
{
    SerialGreedyMatcher greedy(false);
    RequestMatrix req(4);
    req.set(0, 1, 1);
    req.set(0, 2, 1);
    req.set(1, 1, 1);
    Matching m = greedy.match(req);
    EXPECT_EQ(m.outputOf(0), 1);  // input 0 takes the first candidate
    EXPECT_EQ(m.outputOf(1), kNoPort);  // input 1 blocked at output 1
}

TEST(GreedyTest, AtLeastHalfOfMaximum)
{
    SerialGreedyMatcher greedy(true, 7);
    Xoshiro256 rng(4);
    for (int t = 0; t < 100; ++t) {
        auto req = RequestMatrix::bernoulli(10, 0.25, rng);
        int g = greedy.match(req).size();
        int mx = maximumMatchingSize(req);
        EXPECT_GE(2 * g, mx);
        EXPECT_LE(g, mx);
    }
}

TEST(GreedyTest, FullRequestsFullyMatched)
{
    SerialGreedyMatcher greedy(true, 9);
    RequestMatrix req(8);
    for (PortId i = 0; i < 8; ++i)
        for (PortId j = 0; j < 8; ++j)
            req.set(i, j, 1);
    EXPECT_EQ(greedy.match(req).size(), 8);
}

TEST(GreedyTest, NamesDifferByMode)
{
    EXPECT_NE(SerialGreedyMatcher(true).name(),
              SerialGreedyMatcher(false).name());
}

}  // namespace
}  // namespace an2
