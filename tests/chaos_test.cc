// Property tests for the seeded chaos engine (an2/fault/chaos.h) and
// the FaultPlan text form it expands into: spec round-trips are
// byte-identical over a thousand seeded random instances, expansion is
// a pure function of (spec, env), and every generated event targets a
// live element inside the horizon.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "an2/base/error.h"
#include "an2/base/rng.h"
#include "an2/fault/chaos.h"
#include "an2/fault/fault_plan.h"
#include "an2/matching/pim.h"
#include "an2/topo/lan.h"
#include "an2/topo/topology.h"

namespace an2 {
namespace {

using fault::ChaosEnv;
using fault::ChaosSpec;
using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultPlan;

topo::LanConfig
lanConfig(uint64_t seed = 1)
{
    topo::LanConfig config;
    config.seed = seed;
    config.matcher = [](int /*n_ports*/, uint64_t s) {
        PimConfig cfg;
        cfg.iterations = 2;
        cfg.seed = s;
        return std::make_unique<PimMatcher>(cfg);
    };
    return config;
}

// ---------------------------------------------------------------------------
// FaultPlan round-trip property

TEST(ChaosTest, FaultPlanRoundTripsOverRandomPlans)
{
    // parse() stable-sorts events by slot, so a canonical plan is one
    // whose events were generated in slot order; str() -> parse() ->
    // str() must then reproduce every byte.
    const FaultKind kKinds[] = {FaultKind::InputDown,  FaultKind::InputUp,
                                FaultKind::OutputDown, FaultKind::OutputUp,
                                FaultKind::LinkDown,   FaultKind::LinkUp};
    uint64_t state = 0xC0FFEE;
    for (int trial = 0; trial < 1000; ++trial) {
        FaultPlan plan;
        const int n_events = static_cast<int>(splitmix64(state) % 8);
        SlotTime slot = 0;
        for (int e = 0; e < n_events; ++e) {
            FaultEvent ev;
            slot += static_cast<SlotTime>(splitmix64(state) % 5000);
            ev.slot = slot;
            ev.kind =
                kKinds[splitmix64(state) % (sizeof kKinds / sizeof *kKinds)];
            ev.target = static_cast<int>(splitmix64(state) % 64);
            plan.events.push_back(ev);
        }
        // Exercise the probabilistic modes on a quarter of the plans,
        // with probabilities that have short exact decimal forms.
        if (splitmix64(state) % 4 == 0)
            plan.drop_prob = (1.0 + splitmix64(state) % 9) / 16.0;
        if (splitmix64(state) % 4 == 0)
            plan.corrupt_prob = (1.0 + splitmix64(state) % 9) / 32.0;

        const std::string s1 = plan.str();
        const FaultPlan reparsed = FaultPlan::parse(s1);
        EXPECT_EQ(reparsed.str(), s1) << "trial " << trial;
        EXPECT_EQ(reparsed.events.size(), plan.events.size());
        EXPECT_EQ(reparsed.drop_prob, plan.drop_prob);
        EXPECT_EQ(reparsed.corrupt_prob, plan.corrupt_prob);
    }
}

// ---------------------------------------------------------------------------
// ChaosSpec text form

TEST(ChaosTest, SpecRoundTripsOverRandomSpecs)
{
    uint64_t state = 0xBEEF;
    for (int trial = 0; trial < 1000; ++trial) {
        ChaosSpec spec;
        spec.seed = splitmix64(state);
        spec.rate = (1.0 + splitmix64(state) % 10000) / 100.0;
        // Any kind subset with at least one base (non-storm) kind.
        do {
            spec.kinds = static_cast<uint32_t>(splitmix64(state) % 16);
        } while ((spec.kinds &
                  (fault::kChaosPort | fault::kChaosLink |
                   fault::kChaosSwitch)) == 0);
        ASSERT_TRUE(spec.enabled());

        const std::string s1 = spec.str();
        const ChaosSpec reparsed = ChaosSpec::parse(s1);
        EXPECT_EQ(reparsed.str(), s1) << "trial " << trial;
        EXPECT_EQ(reparsed.seed, spec.seed);
        EXPECT_EQ(reparsed.rate, spec.rate);
        EXPECT_EQ(reparsed.kinds, spec.kinds);
    }
}

TEST(ChaosTest, SpecParseRejectsMalformedInput)
{
    EXPECT_THROW(ChaosSpec::parse(""), UsageError);
    EXPECT_THROW(ChaosSpec::parse("chaos(1,2.0)"), UsageError);
    EXPECT_THROW(ChaosSpec::parse("chaos(1,2.0,storm)"), UsageError);
    EXPECT_THROW(ChaosSpec::parse("chaos(1,0,link)"), UsageError);
    EXPECT_THROW(ChaosSpec::parse("chaos(1,-2,link)"), UsageError);
    EXPECT_THROW(ChaosSpec::parse("chaos(1,2.0,link+)"), UsageError);
    EXPECT_THROW(ChaosSpec::parse("chaos(1,2.0,banana)"), UsageError);
    EXPECT_THROW(ChaosSpec::parse("chaos(x,2.0,link)"), UsageError);
    EXPECT_THROW(ChaosSpec::parse("havoc(1,2.0,link)"), UsageError);
}

// ---------------------------------------------------------------------------
// Environment extraction and expansion

TEST(ChaosTest, EnvForStarHasSymmetricPeersAndSwitchGroups)
{
    topo::Lan lan(topo::Topology::star(4, 2), lanConfig());
    const ChaosEnv env = fault::chaosEnvFor(lan.net(), 10'000);

    EXPECT_EQ(env.horizon_slots, 10'000);
    EXPECT_EQ(env.num_links, lan.net().numLinks());
    ASSERT_EQ(static_cast<int>(env.peer.size()), env.num_links);
    for (int l = 0; l < env.num_links; ++l) {
        ASSERT_GE(env.peer[l], 0) << "full-duplex topology";
        EXPECT_EQ(env.peer[env.peer[l]], l);
        EXPECT_NE(env.peer[l], l);
    }
    // star(4,2): one core + 4 leaf switches, all with incident trunks.
    EXPECT_EQ(env.switch_links.size(), 5u);
    for (const std::vector<int>& group : env.switch_links)
        EXPECT_FALSE(group.empty());
}

TEST(ChaosTest, ExpansionIsDeterministicAndInBounds)
{
    topo::Lan lan(topo::Topology::mesh(3, 3, /*torus=*/true, 2),
                  lanConfig());
    const SlotTime horizon = 20'000;
    const ChaosEnv env = fault::chaosEnvFor(lan.net(), horizon);

    ChaosSpec spec = ChaosSpec::parse("chaos(42,3.5,port+link+switch+storm)");
    const FaultPlan a = fault::expandChaos(spec, env);
    const FaultPlan b = fault::expandChaos(spec, env);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_FALSE(a.empty());
    EXPECT_FALSE(a.probabilistic());

    SlotTime prev = 0;
    for (const FaultEvent& ev : a.events) {
        EXPECT_TRUE(ev.kind == FaultKind::LinkDown ||
                    ev.kind == FaultKind::LinkUp);
        EXPECT_GE(ev.target, 0);
        EXPECT_LT(ev.target, env.num_links);
        EXPECT_GE(ev.slot, 1);
        EXPECT_LT(ev.slot, horizon);
        EXPECT_GE(ev.slot, prev);  // parse/expand keep slot order
        prev = ev.slot;
    }

    // A different seed produces different churn.
    spec.seed = 43;
    EXPECT_NE(fault::expandChaos(spec, env).str(), a.str());
}

TEST(ChaosTest, StormQuantizesRevivalSlots)
{
    topo::Lan lan(topo::Topology::star(8, 2), lanConfig());
    const SlotTime horizon = 50'000;
    const ChaosEnv env = fault::chaosEnvFor(lan.net(), horizon);

    const FaultPlan plan = fault::expandChaos(
        ChaosSpec::parse("chaos(5,4,link+storm)"), env);
    int revivals = 0;
    for (const FaultEvent& ev : plan.events) {
        if (ev.kind != FaultKind::LinkUp)
            continue;
        ++revivals;
        EXPECT_EQ(ev.slot % 1000, 0)
            << "storm revivals land on 1000-slot boundaries";
    }
    EXPECT_GT(revivals, 0);
}

TEST(ChaosTest, SwitchKindKillsEveryIncidentLinkTogether)
{
    topo::Lan lan(topo::Topology::star(4, 2), lanConfig());
    const ChaosEnv env = fault::chaosEnvFor(lan.net(), 30'000);

    const FaultPlan plan = fault::expandChaos(
        ChaosSpec::parse("chaos(11,2,switch)"), env);
    ASSERT_FALSE(plan.events.empty());

    // Every down-slot's target set must be exactly one switch's whole
    // incident-link group.
    std::set<SlotTime> down_slots;
    for (const FaultEvent& ev : plan.events)
        if (ev.kind == FaultKind::LinkDown)
            down_slots.insert(ev.slot);
    for (SlotTime slot : down_slots) {
        std::set<int> targets;
        for (const FaultEvent& ev : plan.events)
            if (ev.kind == FaultKind::LinkDown && ev.slot == slot)
                targets.insert(ev.target);
        bool matches_a_group = false;
        for (const std::vector<int>& group : env.switch_links) {
            std::set<int> g(group.begin(), group.end());
            if (g == targets)
                matches_a_group = true;
        }
        EXPECT_TRUE(matches_a_group)
            << "down-set at slot " << slot << " is not a switch group";
    }
}

}  // namespace
}  // namespace an2
