// Tests for the single-switch simulation harness (an2/sim/simulator.h).
#include "an2/sim/simulator.h"

#include <gtest/gtest.h>

#include <string>

#include "an2/matching/pim.h"
#include "an2/sim/iq_switch.h"
#include "an2/sim/oq_switch.h"
#include "an2/sim/traffic.h"

namespace an2 {
namespace {

TEST(SimulatorTest, OfferedLoadTracksGenerator)
{
    OutputQueuedSwitch sw(8);
    UniformTraffic traffic(8, 0.4, 1);
    SimConfig cfg;
    cfg.slots = 20'000;
    cfg.warmup = 2'000;
    SimResult res = runSimulation(sw, traffic, cfg);
    EXPECT_NEAR(res.offered, 0.4, 0.01);
    EXPECT_EQ(res.measured_slots, 18'000);
}

TEST(SimulatorTest, ThroughputMatchesOfferedUnderLowLoad)
{
    OutputQueuedSwitch sw(8);
    UniformTraffic traffic(8, 0.3, 2);
    SimConfig cfg;
    cfg.slots = 20'000;
    cfg.warmup = 2'000;
    SimResult res = runSimulation(sw, traffic, cfg);
    EXPECT_NEAR(res.throughput, res.offered, 0.01);
}

TEST(SimulatorTest, CallbackSeesEveryDeliveredCell)
{
    InputQueuedSwitch sw({.n = 4}, std::make_unique<PimMatcher>());
    UniformTraffic traffic(4, 0.5, 3);
    int64_t seen = 0;
    SimConfig cfg;
    cfg.slots = 5'000;
    cfg.warmup = 0;
    cfg.on_delivered = [&](const Cell&, SlotTime) { ++seen; };
    SimResult res = runSimulation(sw, traffic, cfg);
    EXPECT_EQ(seen, res.delivered);
    EXPECT_GT(seen, 0);
}

TEST(SimulatorTest, PerConnectionCountsSumToDelivered)
{
    InputQueuedSwitch sw({.n = 4}, std::make_unique<PimMatcher>());
    UniformTraffic traffic(4, 0.6, 4);
    SimConfig cfg;
    cfg.slots = 10'000;
    cfg.warmup = 1'000;
    SimResult res = runSimulation(sw, traffic, cfg);
    EXPECT_EQ(res.per_connection.rows(), 4);
    EXPECT_EQ(res.per_connection.cols(), 4);
    EXPECT_EQ(res.per_connection.total(), res.delivered);
    int64_t per_flow_total = 0;
    for (const auto& [flow, count] : res.per_flow)
        per_flow_total += count;
    EXPECT_EQ(per_flow_total, res.delivered);
}

TEST(SimulatorTest, MaxOccupancyTracked)
{
    OutputQueuedSwitch sw(4);
    PeriodicBurstTraffic traffic(4, 1.0, 5);  // 4 cells/slot to one output
    SimConfig cfg;
    cfg.slots = 100;
    cfg.warmup = 0;
    SimResult res = runSimulation(sw, traffic, cfg);
    EXPECT_GE(res.max_occupancy, 3);
}

TEST(SimulatorTest, InvalidConfigRejected)
{
    OutputQueuedSwitch sw(4);
    UniformTraffic traffic(4, 0.5, 6);
    SimConfig bad;
    bad.slots = 0;
    EXPECT_THROW(runSimulation(sw, traffic, bad), UsageError);
    bad.slots = -5;
    EXPECT_THROW(runSimulation(sw, traffic, bad), UsageError);
    bad.slots = 10;
    bad.warmup = -1;
    EXPECT_THROW(runSimulation(sw, traffic, bad), UsageError);
}

TEST(SimulatorTest, WarmupCoveringWholeRunRejected)
{
    // warmup >= slots would leave zero measured slots (and divide the
    // throughput by a non-positive denominator); it must be refused
    // with a clear configuration error, not produce garbage.
    OutputQueuedSwitch sw(4);
    UniformTraffic traffic(4, 0.5, 7);
    SimConfig bad;
    bad.slots = 10;
    bad.warmup = 10;
    EXPECT_THROW(runSimulation(sw, traffic, bad), UsageError);
    bad.warmup = 11;
    EXPECT_THROW(runSimulation(sw, traffic, bad), UsageError);
    try {
        runSimulation(sw, traffic, bad);
        FAIL() << "expected UsageError";
    } catch (const UsageError& e) {
        EXPECT_NE(std::string(e.what()).find("warmup"), std::string::npos);
    }
    bad.warmup = 9;  // one measured slot: valid again
    EXPECT_NO_THROW(runSimulation(sw, traffic, bad));
}

}  // namespace
}  // namespace an2
