// Tests for the iSLIP baseline (an2/matching/islip.h).
#include "an2/matching/islip.h"

#include <gtest/gtest.h>

#include "an2/base/rng.h"

namespace an2 {
namespace {

TEST(IslipTest, EmptyRequestsEmptyMatch)
{
    IslipMatcher islip;
    RequestMatrix req(8);
    EXPECT_EQ(islip.match(req).size(), 0);
}

TEST(IslipTest, LegalOnRandomPatterns)
{
    IslipMatcher islip(4);
    Xoshiro256 rng(3);
    for (int t = 0; t < 50; ++t) {
        auto req = RequestMatrix::bernoulli(16, 0.4, rng);
        Matching m = islip.match(req);
        EXPECT_TRUE(m.isLegalFor(req));
    }
}

TEST(IslipTest, ManyIterationsReachMaximal)
{
    IslipMatcher islip(16);
    Xoshiro256 rng(5);
    for (int t = 0; t < 50; ++t) {
        auto req = RequestMatrix::bernoulli(16, 0.5, rng);
        Matching m = islip.match(req);
        EXPECT_TRUE(m.isMaximalFor(req));
    }
}

TEST(IslipTest, PointersDesynchronizeUnderFullLoad)
{
    // The classic iSLIP result: with every VOQ full, the rotating
    // pointers settle into a time-division pattern serving all N^2
    // connections; the matching saturates the switch every slot.
    constexpr int kN = 8;
    IslipMatcher islip(1);
    RequestMatrix req(kN);
    for (PortId i = 0; i < kN; ++i)
        for (PortId j = 0; j < kN; ++j)
            req.set(i, j, 1);
    // Warm up so the pointers desynchronize.
    for (int s = 0; s < 100; ++s)
        islip.match(req);
    for (int s = 0; s < 50; ++s)
        EXPECT_EQ(islip.match(req).size(), kN);
}

TEST(IslipTest, FairAcrossConnectionsUnderFullLoad)
{
    constexpr int kN = 4;
    IslipMatcher islip(1);
    RequestMatrix req(kN);
    for (PortId i = 0; i < kN; ++i)
        for (PortId j = 0; j < kN; ++j)
            req.set(i, j, 1);
    Matrix<int> served(kN, kN, 0);
    constexpr int kSlots = 4000;
    for (int s = 0; s < kSlots; ++s) {
        Matching m = islip.match(req);
        for (auto [i, j] : m.pairs())
            ++served(i, j);
    }
    // Every connection should receive roughly 1/N of its output link.
    for (PortId i = 0; i < kN; ++i)
        for (PortId j = 0; j < kN; ++j)
            EXPECT_NEAR(served(i, j) / static_cast<double>(kSlots),
                        1.0 / kN, 0.08)
                << "connection " << i << "->" << j;
}

TEST(IslipTest, DeterministicNoRandomness)
{
    IslipMatcher a(2);
    IslipMatcher b(2);
    Xoshiro256 rng(7);
    for (int t = 0; t < 20; ++t) {
        auto req = RequestMatrix::bernoulli(8, 0.6, rng);
        Matching ma = a.match(req);
        Matching mb = b.match(req);
        for (PortId i = 0; i < 8; ++i)
            EXPECT_EQ(ma.outputOf(i), mb.outputOf(i));
    }
}

TEST(IslipTest, ResetClearsPointers)
{
    IslipMatcher islip(1);
    RequestMatrix req(4);
    req.set(0, 0, 1);
    islip.match(req);
    islip.reset();
    RequestMatrix bigger(8);
    EXPECT_NO_THROW(islip.match(bigger));
}

TEST(IslipTest, SizeChangeWithoutResetFails)
{
    IslipMatcher islip(1);
    RequestMatrix req(4);
    islip.match(req);
    RequestMatrix bigger(8);
    EXPECT_THROW(islip.match(bigger), UsageError);
}

TEST(IslipTest, InvalidIterationsRejected)
{
    EXPECT_THROW(IslipMatcher(0), UsageError);
}

}  // namespace
}  // namespace an2
