// Tests for the virtual clock baseline (an2/sim/virtual_clock.h).
#include "an2/sim/virtual_clock.h"

#include <gtest/gtest.h>

#include <map>

#include "an2/base/error.h"

namespace an2 {
namespace {

Cell
cellFor(FlowId flow, PortId in, PortId out, SlotTime slot, int64_t seq = 0)
{
    Cell c;
    c.flow = flow;
    c.input = in;
    c.output = out;
    c.arrival_slot = slot;
    c.inject_slot = slot;
    c.seq = seq;
    return c;
}

TEST(VirtualClockTest, SingleCellForwarded)
{
    VirtualClockSwitch sw(4);
    sw.acceptCell(cellFor(1, 0, 2, 0));
    auto departed = sw.runSlot(0);
    ASSERT_EQ(departed.size(), 1u);
    EXPECT_EQ(departed[0].output, 2);
    EXPECT_EQ(sw.bufferedCells(), 0);
}

TEST(VirtualClockTest, RatesDivideContendedLink)
{
    // Two backlogged flows into output 0, rates 0.75 and 0.25: over time
    // the link divides ~3:1.
    VirtualClockSwitch sw(2);
    sw.setFlowRate(10, 0.75);
    sw.setFlowRate(20, 0.25);
    std::map<FlowId, int> served;
    int64_t seq_a = 0;
    int64_t seq_b = 0;
    for (SlotTime slot = 0; slot < 4000; ++slot) {
        // Keep both flows backlogged (inject one cell per flow per slot;
        // queue grows but priorities decide service order).
        sw.acceptCell(cellFor(10, 0, 0, slot, seq_a++));
        sw.acceptCell(cellFor(20, 1, 0, slot, seq_b++));
        for (const Cell& d : sw.runSlot(slot))
            ++served[d.flow];
    }
    double share_a = served[10] / 4000.0;
    EXPECT_NEAR(share_a, 0.75, 0.02);
}

TEST(VirtualClockTest, EqualRatesShareEqually)
{
    VirtualClockSwitch sw(2);
    sw.setFlowRate(1, 0.5);
    sw.setFlowRate(2, 0.5);
    std::map<FlowId, int> served;
    for (SlotTime slot = 0; slot < 2000; ++slot) {
        sw.acceptCell(cellFor(1, 0, 0, slot));
        sw.acceptCell(cellFor(2, 1, 0, slot));
        for (const Cell& d : sw.runSlot(slot))
            ++served[d.flow];
    }
    EXPECT_NEAR(served[1] / 2000.0, 0.5, 0.03);
}

TEST(VirtualClockTest, BurstCannotStarveAtRateFlow)
{
    // Flow 1 sends exactly at its 0.5 rate. Flow 2, idle so far, dumps a
    // 200-cell burst. Because virtual clocks advance by 1/rate per cell,
    // the burst spends its priority quickly and flow 1 keeps receiving
    // its entitled half of the link (Zhang 1991; the paper's Section 5.1
    // comparison point).
    VirtualClockSwitch sw(2);
    sw.setFlowRate(1, 0.5);
    sw.setFlowRate(2, 0.5);
    for (SlotTime slot = 0; slot < 1000; ++slot) {
        if (slot % 2 == 0)
            sw.acceptCell(cellFor(1, 0, 0, slot));
        sw.runSlot(slot);
    }
    Cell burst = cellFor(2, 1, 0, 1000);
    for (int k = 0; k < 200; ++k)
        sw.acceptCell(burst);
    std::map<FlowId, int> served;
    for (SlotTime slot = 1000; slot < 1400; ++slot) {
        if (slot % 2 == 0)
            sw.acceptCell(cellFor(1, 0, 0, slot));
        for (const Cell& d : sw.runSlot(slot))
            ++served[d.flow];
    }
    // Flow 1 keeps at least ~90% of its entitled 200 services.
    EXPECT_GE(served[1], 180);
    // The burst drains in the leftover capacity.
    EXPECT_GE(served[2], 150);
}

TEST(VirtualClockTest, OverRateFlowAccumulatesDebt)
{
    // A flow that sent far above its rate while alone is deprioritized
    // once a competitor appears -- the rate-monitoring property Section
    // 5.3 credits the virtual clock approach with (and notes statistical
    // matching lacks).
    VirtualClockSwitch sw(2);
    sw.setFlowRate(1, 0.5);
    sw.setFlowRate(2, 0.5);
    for (SlotTime slot = 0; slot < 500; ++slot) {
        sw.acceptCell(cellFor(1, 0, 0, slot));  // 2x its rate
        sw.runSlot(slot);
    }
    std::map<FlowId, int> served;
    for (SlotTime slot = 500; slot < 700; ++slot) {
        sw.acceptCell(cellFor(1, 0, 0, slot));
        sw.acceptCell(cellFor(2, 1, 0, slot));
        for (const Cell& d : sw.runSlot(slot))
            ++served[d.flow];
    }
    EXPECT_GT(served[2], served[1]);
}

TEST(VirtualClockTest, WorkConservingAcrossOutputs)
{
    VirtualClockSwitch sw(4);
    for (PortId j = 0; j < 4; ++j)
        sw.acceptCell(cellFor(j, 0, j, 0));
    EXPECT_EQ(sw.runSlot(0).size(), 4u);
}

TEST(VirtualClockTest, FifoWithinFlow)
{
    VirtualClockSwitch sw(2);
    sw.setFlowRate(5, 0.5);
    for (int s = 0; s < 6; ++s)
        sw.acceptCell(cellFor(5, 0, 0, 0, s));
    for (int s = 0; s < 6; ++s) {
        auto departed = sw.runSlot(s);
        ASSERT_EQ(departed.size(), 1u);
        EXPECT_EQ(departed[0].seq, s);
    }
}

TEST(VirtualClockTest, InvalidRatesRejected)
{
    VirtualClockSwitch sw(2);
    EXPECT_THROW(sw.setFlowRate(1, 0.0), UsageError);
    EXPECT_THROW(sw.setFlowRate(1, 1.5), UsageError);
    EXPECT_THROW(sw.setDefaultRate(-1.0), UsageError);
}

}  // namespace
}  // namespace an2
