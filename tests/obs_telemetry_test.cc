// Tests for the telemetry layer (an2/obs latency + time series): the
// log-linear latency histogram, latency tracking through the Recorder
// and the simulation loop, the windowed metrics time series, and the
// an2.metrics.v1 / Prometheus exporters.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "an2/matching/pim.h"
#include "an2/obs/latency.h"
#include "an2/obs/recorder.h"
#include "an2/obs/timeseries.h"
#include "an2/sim/iq_switch.h"
#include "an2/sim/simulator.h"
#include "an2/sim/traffic.h"

#ifdef AN2_OBS_DISABLED
#define SKIP_IF_OBS_DISABLED() \
    GTEST_SKIP() << "obs layer compiled out (AN2_OBS_DISABLED)"
#else
#define SKIP_IF_OBS_DISABLED() (void)0
#endif

namespace an2::obs {
namespace {

// ---------------------------------------------------------------------------
// Counter / gauge name registry

TEST(CounterNamesTest, CounterNamesExhaustive)
{
    // Every counter has a name, no name is the "unknown" fallback, and
    // no two counters share one (a duplicate would silently merge two
    // metrics in every exported document).
    std::set<std::string> seen;
    for (int c = 0; c < static_cast<int>(Counter::kCount); ++c) {
        const char* name = counterName(static_cast<Counter>(c));
        ASSERT_NE(name, nullptr) << "counter " << c;
        EXPECT_STRNE(name, "") << "counter " << c;
        EXPECT_STRNE(name, "unknown") << "counter " << c;
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate counter name '" << name << "'";
    }
    EXPECT_EQ(seen.size(), kNumCounters);
}

TEST(CounterNamesTest, GaugeNamesExhaustive)
{
    std::set<std::string> seen;
    for (int g = 0; g < static_cast<int>(Gauge::kCount); ++g) {
        const char* name = gaugeName(static_cast<Gauge>(g));
        ASSERT_NE(name, nullptr) << "gauge " << g;
        EXPECT_STRNE(name, "") << "gauge " << g;
        EXPECT_STRNE(name, "unknown") << "gauge " << g;
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate gauge name '" << name << "'";
    }
    EXPECT_EQ(seen.size(), kNumGauges);
}

// ---------------------------------------------------------------------------
// LogHistogram

TEST(LogHistogramTest, SmallValuesAreExact)
{
    // Values below one sub-bucket span (32) land in unit-width bins, so
    // quantiles of small delays are exact, not approximate.
    LogHistogram h;
    for (int64_t v = 0; v < 32; ++v)
        h.add(v);
    EXPECT_EQ(h.count(), 32);
    EXPECT_EQ(h.max(), 31);
    for (int64_t v = 0; v < 32; ++v)
        EXPECT_EQ(LogHistogram::binLowerBound(LogHistogram::binOf(v)), v);
}

TEST(LogHistogramTest, BinBoundsAreMonotone)
{
    int64_t prev = -1;
    for (size_t b = 0; b < LogHistogram::kBins; ++b) {
        int64_t lo = LogHistogram::binLowerBound(b);
        EXPECT_GT(lo, prev) << "bin " << b;
        // The lower bound maps back into its own bin.
        EXPECT_EQ(LogHistogram::binOf(lo), b);
        prev = lo;
    }
}

TEST(LogHistogramTest, RoundTripAtPowerOfTwoBoundaries)
{
    // Property: for every representable value v >= 0,
    // binLowerBound(binOf(v)) <= v — a histogram must never report a
    // quantile above a value it actually saw. The risky inputs are the
    // bin-edge neighborhoods, so probe 2^k - 1, 2^k, 2^k + 1 for every
    // k up to (and past) kValueBits, where values clamp into the last
    // bin.
    for (int k = 0; k <= 62; ++k) {
        for (int64_t v :
             {(int64_t{1} << k) - 1, int64_t{1} << k,
              (int64_t{1} << k) + 1}) {
            size_t bin = LogHistogram::binOf(v);
            ASSERT_LT(bin, LogHistogram::kBins) << "value " << v;
            EXPECT_LE(LogHistogram::binLowerBound(bin), v)
                << "k=" << k << " value " << v << " bin " << bin;
            // A value past the clamp threshold must land in the last
            // bin, not wrap into an arbitrary one.
            if (v >= (int64_t{1} << LogHistogram::kValueBits))
                EXPECT_EQ(bin, LogHistogram::kBins - 1) << "value " << v;
        }
    }
    // INT64_MAX clamps into the last bin and its floor stays below it.
    const int64_t top = std::numeric_limits<int64_t>::max();
    EXPECT_EQ(LogHistogram::binOf(top), LogHistogram::kBins - 1);
    EXPECT_LE(LogHistogram::binLowerBound(LogHistogram::kBins - 1), top);
    // Negative values clamp to bin 0 by contract (lower bound 0, which
    // over-reports them — documented and acceptable for delays).
    for (int64_t v : {int64_t{-1}, int64_t{-1000},
                      std::numeric_limits<int64_t>::min()}) {
        EXPECT_EQ(LogHistogram::binOf(v), 0u) << "value " << v;
    }
    EXPECT_EQ(LogHistogram::binLowerBound(0), 0);
}

TEST(LogHistogramTest, RelativeErrorIsBounded)
{
    // Log-linear with 32 sub-buckets: the bin lower bound understates
    // the true value by at most one sub-bucket width, i.e. < 1/32.
    for (int64_t v : {33LL, 100LL, 1000LL, 54321LL, 1LL << 20, 1LL << 33}) {
        int64_t lo = LogHistogram::binLowerBound(LogHistogram::binOf(v));
        EXPECT_LE(lo, v);
        EXPECT_LT(static_cast<double>(v - lo), static_cast<double>(v) / 32.0)
            << "value " << v << " bin floor " << lo;
    }
}

TEST(LogHistogramTest, QuantilesOfKnownDistribution)
{
    LogHistogram h;
    for (int64_t v = 1; v <= 1000; ++v)
        h.add(v);
    EXPECT_EQ(h.count(), 1000);
    // Exact region: values < 32 sit in unit bins.
    EXPECT_EQ(h.quantile(0.01), 10);
    // Approximate region: quantile returns the bin's lower bound, which
    // is within 1/32 below the true order statistic.
    int64_t p50 = h.quantile(0.5);
    EXPECT_LE(p50, 500);
    EXPECT_GE(p50, 500 - 500 / 32);
    int64_t p99 = h.quantile(0.99);
    EXPECT_LE(p99, 990);
    EXPECT_GE(p99, 990 - 990 / 32);
    EXPECT_EQ(h.quantile(1.0),
              LogHistogram::binLowerBound(LogHistogram::binOf(1000)));
}

TEST(LogHistogramTest, EmptyAndEdgeBehavior)
{
    LogHistogram h;
    EXPECT_EQ(h.count(), 0);
    EXPECT_EQ(h.quantile(0.5), 0);
    EXPECT_EQ(h.mean(), 0.0);
    h.add(-5);  // negative delays clamp to 0 rather than corrupting a bin
    EXPECT_EQ(h.count(), 1);
    EXPECT_EQ(h.quantile(0.5), 0);
    h.add(std::numeric_limits<int64_t>::max());  // clamps into last bin
    EXPECT_EQ(h.count(), 2);
    EXPECT_GT(h.quantile(1.0), 0);
}

TEST(LogHistogramTest, MergeAndReset)
{
    LogHistogram a;
    LogHistogram b;
    for (int64_t v = 0; v < 100; ++v)
        (v % 2 ? a : b).add(v);
    LogHistogram whole;
    for (int64_t v = 0; v < 100; ++v)
        whole.add(v);
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_EQ(a.sum(), whole.sum());
    EXPECT_EQ(a.max(), whole.max());
    for (double q : {0.1, 0.5, 0.9, 0.99})
        EXPECT_EQ(a.quantile(q), whole.quantile(q)) << "q=" << q;
    a.reset();
    EXPECT_EQ(a.count(), 0);
    EXPECT_EQ(a.max(), 0);
}

// ---------------------------------------------------------------------------
// Recorder latency tracking

TEST(LatencyTrackingTest, DisabledByDefaultButCountsDeliveries)
{
    Recorder rec;
    EXPECT_FALSE(rec.latencyEnabled());
    rec.latencySample(TrafficClass::VBR, 2, 17);
    EXPECT_EQ(rec.counter(Counter::CellsDelivered), 1);
    EXPECT_EQ(rec.latencyHistogram(TrafficClass::VBR).count(), 0);
    EXPECT_EQ(rec.portLatencyHistogram(TrafficClass::VBR, 2), nullptr);
}

TEST(LatencyTrackingTest, ClassAndPortHistograms)
{
    Recorder rec(RecorderConfig{.ports = 4, .track_latency = true});
    ASSERT_TRUE(rec.latencyEnabled());
    rec.latencySample(TrafficClass::VBR, 0, 5);
    rec.latencySample(TrafficClass::VBR, 1, 9);
    rec.latencySample(TrafficClass::CBR, 1, 2);
    EXPECT_EQ(rec.counter(Counter::CellsDelivered), 3);
    EXPECT_EQ(rec.latencyHistogram(TrafficClass::VBR).count(), 2);
    EXPECT_EQ(rec.latencyHistogram(TrafficClass::CBR).count(), 1);
    const LogHistogram* p1 = rec.portLatencyHistogram(TrafficClass::VBR, 1);
    ASSERT_NE(p1, nullptr);
    EXPECT_EQ(p1->count(), 1);
    EXPECT_EQ(p1->quantile(1.0), 9);
    // Out-of-range ports record into the class histogram only.
    rec.latencySample(TrafficClass::VBR, 99, 3);
    EXPECT_EQ(rec.latencyHistogram(TrafficClass::VBR).count(), 3);
    EXPECT_EQ(rec.portLatencyHistogram(TrafficClass::VBR, 99), nullptr);
}

TEST(LatencyTrackingTest, DeliveryProbeThroughSimulation)
{
    SKIP_IF_OBS_DISABLED();
    const int n = 8;
    Recorder rec(RecorderConfig{.ports = n, .track_latency = true});
    attach(&rec);
    InputQueuedSwitch sw(IqSwitchConfig{.n = n},
                         std::make_unique<PimMatcher>(
                             PimConfig{.iterations = 4, .seed = 21}));
    UniformTraffic traffic(n, 0.7, 23);
    SimConfig cfg;
    cfg.slots = 400;
    cfg.warmup = 0;
    SimResult res = runSimulation(sw, traffic, cfg);
    detach();

    // Every delivered cell hit the latency probe exactly once.
    EXPECT_EQ(rec.counter(Counter::CellsDelivered), res.delivered);
    const LogHistogram& vbr = rec.latencyHistogram(TrafficClass::VBR);
    EXPECT_EQ(vbr.count(), res.delivered);
    // For a single switch, delivery latency == queueing delay, so the
    // histogram mean must track the simulator's own mean delay to
    // within the histogram's 1/32 relative error.
    EXPECT_NEAR(vbr.mean(), res.mean_delay,
                res.mean_delay / 32.0 + 1e-9);
    // Per-port histograms partition the class histogram.
    int64_t port_total = 0;
    for (PortId j = 0; j < n; ++j) {
        const LogHistogram* h = rec.portLatencyHistogram(TrafficClass::VBR, j);
        ASSERT_NE(h, nullptr);
        port_total += h->count();
    }
    EXPECT_EQ(port_total, vbr.count());
    // Hop delay is populated by the dequeue probe.
    EXPECT_EQ(rec.hopDelayHistogram(TrafficClass::VBR).count(),
              rec.counter(Counter::CellsDequeued));
}

// ---------------------------------------------------------------------------
// Metrics time series

TEST(TimeSeriesTest, DisabledByDefault)
{
    Recorder rec;
    EXPECT_FALSE(rec.metricsEnabled());
    rec.beginSlot(1000);
    rec.sampleMetricsNow(1000);  // no-op, not a crash
    EXPECT_EQ(rec.counter(Counter::MetricsSamples), 0);
}

TEST(TimeSeriesTest, WindowBoundarySampling)
{
    SKIP_IF_OBS_DISABLED();
    const int n = 4;
    Recorder rec(RecorderConfig{
        .ports = n, .track_latency = true, .metrics_every = 100});
    attach(&rec);
    InputQueuedSwitch sw(IqSwitchConfig{.n = n},
                         std::make_unique<PimMatcher>(
                             PimConfig{.iterations = 4, .seed = 31}));
    UniformTraffic traffic(n, 0.6, 37);
    SimConfig cfg;
    cfg.slots = 450;
    cfg.warmup = 0;
    runSimulation(sw, traffic, cfg);
    rec.sampleMetricsNow(450);  // flush the final partial window
    detach();

    // Boundaries at 100, 200, 300, 400 plus the flush at 450.
    const TimeSeries& ts = rec.metrics();
    ASSERT_EQ(ts.size(), 5u);
    EXPECT_EQ(ts.sample(0).slot, 100);
    EXPECT_EQ(ts.sample(3).slot, 400);
    EXPECT_EQ(ts.sample(4).slot, 450);
    EXPECT_EQ(ts.dropped(), 0);
    // The flush is idempotent: re-flushing the same slot adds nothing.
    rec.sampleMetricsNow(450);
    EXPECT_EQ(ts.size(), 5u);
    EXPECT_EQ(rec.counter(Counter::MetricsSamples), 5);

    // Samples are cumulative: counters never decrease across samples,
    // and each sample's SlotsRun matches its stamp.
    for (size_t k = 0; k < ts.size(); ++k) {
        const MetricsSample& s = ts.sample(k);
        EXPECT_EQ(s.counters[static_cast<size_t>(Counter::SlotsRun)],
                  s.slot);
        EXPECT_EQ(s.latency[static_cast<size_t>(TrafficClass::VBR)].count,
                  s.counters[static_cast<size_t>(Counter::CellsDelivered)]);
        if (k > 0) {
            for (size_t c = 0; c < kNumCounters; ++c)
                EXPECT_GE(s.counters[c], ts.sample(k - 1).counters[c]);
        }
    }
}

TEST(TimeSeriesTest, RingDropsOldestWhenFull)
{
    TimeSeries ts(/*every=*/10, /*capacity=*/3);
    ASSERT_TRUE(ts.enabled());
    MetricsSample s{};
    for (int k = 1; k <= 5; ++k) {
        s.slot = k * 10;
        ts.push(s);
    }
    EXPECT_EQ(ts.size(), 3u);
    EXPECT_EQ(ts.dropped(), 2);
    EXPECT_EQ(ts.sample(0).slot, 30);
    EXPECT_EQ(ts.sample(2).slot, 50);
}

// ---------------------------------------------------------------------------
// Exporters

/** Run a small seeded simulation with full telemetry attached. */
void
runTelemetry(Recorder& rec, uint64_t seed)
{
    attach(&rec);
    InputQueuedSwitch sw(IqSwitchConfig{.n = 4},
                         std::make_unique<PimMatcher>(
                             PimConfig{.iterations = 4, .seed = seed}));
    UniformTraffic traffic(4, 0.6, seed + 1);
    SimConfig cfg;
    cfg.slots = 300;
    cfg.warmup = 0;
    runSimulation(sw, traffic, cfg);
    rec.sampleMetricsNow(300);
    detach();
}

TEST(MetricsExportTest, JsonLinesShape)
{
    SKIP_IF_OBS_DISABLED();
    Recorder rec(RecorderConfig{
        .ports = 4, .track_latency = true, .metrics_every = 100});
    runTelemetry(rec, 41);
    std::string doc = metricsToJsonLines(rec);

    // One line per sample, each a complete an2.metrics.v1 document
    // naming every counter and gauge.
    ASSERT_FALSE(doc.empty());
    EXPECT_EQ(doc.back(), '\n');
    size_t lines = 0;
    for (char ch : doc)
        lines += ch == '\n';
    EXPECT_EQ(lines, rec.metrics().size());
    EXPECT_EQ(doc.find("{\"schema\":\"an2.metrics.v1\",\"source\":"
                       "\"switch\",\"slot\":100,"),
              0u);
    for (int c = 0; c < static_cast<int>(Counter::kCount); ++c)
        EXPECT_NE(doc.find(std::string("\"") +
                           counterName(static_cast<Counter>(c)) + "\":"),
                  std::string::npos);
    for (int g = 0; g < static_cast<int>(Gauge::kCount); ++g)
        EXPECT_NE(doc.find(std::string("\"") +
                           gaugeName(static_cast<Gauge>(g)) + "\":"),
                  std::string::npos);
    EXPECT_NE(doc.find("\"latency\":{\"cbr\":"), std::string::npos);
    EXPECT_NE(doc.find("\"hop_delay\":{\"cbr\":"), std::string::npos);
    EXPECT_NE(doc.find("\"p999\":"), std::string::npos);
}

TEST(MetricsExportTest, JsonLinesDeterministicAcrossRuns)
{
    SKIP_IF_OBS_DISABLED();
    Recorder a(RecorderConfig{
        .ports = 4, .track_latency = true, .metrics_every = 100});
    runTelemetry(a, 43);
    Recorder b(RecorderConfig{
        .ports = 4, .track_latency = true, .metrics_every = 100});
    runTelemetry(b, 43);
    EXPECT_EQ(metricsToJsonLines(a), metricsToJsonLines(b));
    EXPECT_EQ(metricsToPrometheus(a), metricsToPrometheus(b));
}

TEST(MetricsExportTest, PrometheusShape)
{
    SKIP_IF_OBS_DISABLED();
    Recorder rec(RecorderConfig{
        .ports = 4, .track_latency = true, .metrics_every = 100});
    runTelemetry(rec, 47);
    std::string doc = metricsToPrometheus(rec);
    EXPECT_NE(doc.find("# TYPE an2_slots_run counter\nan2_slots_run 300\n"),
              std::string::npos);
    EXPECT_NE(doc.find("an2_buffered_cells "), std::string::npos);
    EXPECT_NE(doc.find(
                  "an2_latency_slots{class=\"vbr\",quantile=\"0.99\"} "),
              std::string::npos);
    EXPECT_NE(doc.find("an2_latency_slots_count{class=\"vbr\"} "),
              std::string::npos);
    EXPECT_NE(doc.find("an2_hop_delay_slots{class=\"vbr\","),
              std::string::npos);
}

TEST(MetricsExportTest, TraceEventsDroppedIsCounted)
{
    SKIP_IF_OBS_DISABLED();
    // A tiny ring under a busy run must account every overwritten event
    // in the proper counter, matching the ring's own tally.
    Recorder rec(RecorderConfig{.trace_capacity = 64, .ports = 4});
    runTelemetry(rec, 53);
    EXPECT_GT(rec.droppedEvents(), 0);
    EXPECT_EQ(rec.counter(Counter::TraceEventsDropped),
              rec.droppedEvents());
}

}  // namespace
}  // namespace an2::obs
