// Tests for the composite statistical+PIM scheduler
// (an2/matching/fill_in.h) — §5.2's "fill unused slots with datagram
// traffic" rule.
#include "an2/matching/fill_in.h"

#include <gtest/gtest.h>

#include "an2/matching/pim.h"
#include "an2/matching/statistical.h"

namespace an2 {
namespace {

std::unique_ptr<FillInMatcher>
statisticalPlusPim(int n, const Matrix<int>& alloc, uint64_t seed)
{
    StatisticalConfig scfg;
    scfg.units = 1000;
    scfg.rounds = 2;
    scfg.seed = seed;
    PimConfig pcfg;
    pcfg.iterations = 4;
    pcfg.seed = seed + 1;
    return std::make_unique<FillInMatcher>(
        std::make_unique<StatisticalMatcher>(alloc, scfg),
        std::make_unique<PimMatcher>(pcfg));
}

TEST(FillInTest, RequiresBothSchedulers)
{
    EXPECT_THROW(FillInMatcher(nullptr, std::make_unique<PimMatcher>()),
                 UsageError);
}

TEST(FillInTest, ResultIsLegalAndConflictFree)
{
    Matrix<int> alloc(8, 8, 100);
    auto matcher = statisticalPlusPim(8, alloc, 5);
    Xoshiro256 rng(6);
    for (int t = 0; t < 200; ++t) {
        auto req = RequestMatrix::bernoulli(8, 0.6, rng);
        Matching m = matcher->match(req);
        EXPECT_TRUE(m.isLegalFor(req));
        for (PortId j = 0; j < 8; ++j)
            EXPECT_LE(m.outputDegree(j), 1);
    }
}

TEST(FillInTest, FillInRestoresWorkConservation)
{
    // Fully backlogged switch: plain statistical matching wastes ~28% of
    // slots; with PIM fill-in the match is maximal, so a fully requested
    // switch moves N cells every slot.
    constexpr int kN = 8;
    Matrix<int> alloc(kN, kN, 1000 / kN);
    auto matcher = statisticalPlusPim(kN, alloc, 7);
    RequestMatrix req(kN);
    for (PortId i = 0; i < kN; ++i)
        for (PortId j = 0; j < kN; ++j)
            req.set(i, j, 1);
    int64_t total = 0;
    constexpr int kSlots = 2000;
    for (int s = 0; s < kSlots; ++s) {
        Matching m = matcher->match(req);
        EXPECT_TRUE(m.isMaximalFor(req));
        total += m.size();
    }
    EXPECT_EQ(total, static_cast<int64_t>(kSlots) * kN);
    EXPECT_GT(matcher->fillInPairs(), 0);
    EXPECT_GT(matcher->primaryPairs(), matcher->fillInPairs());
}

TEST(FillInTest, AllocationsStillHonoredUnderFillIn)
{
    // The Figure 8 scenario with fill-in: connection (3,0)'s allocated
    // quarter is still delivered at >= the 72% statistical floor (the
    // fill-in only adds service, never subtracts).
    constexpr int kN = 4;
    Matrix<int> alloc(kN, kN, 0);
    for (PortId j = 0; j < kN; ++j)
        alloc(3, j) = 250;
    for (PortId i = 0; i < 3; ++i)
        alloc(i, 0) = 250;
    auto matcher = statisticalPlusPim(kN, alloc, 8);
    RequestMatrix req(kN);
    for (PortId i = 0; i < 3; ++i)
        req.set(i, 0, 1);
    for (PortId j = 0; j < kN; ++j)
        req.set(3, j, 1);
    Matrix<int64_t> served(kN, kN, 0);
    constexpr int kSlots = 40'000;
    for (int s = 0; s < kSlots; ++s)
        for (auto [i, j] : matcher->match(req).pairs())
            ++served(i, j);
    double share_30 = static_cast<double>(served(3, 0)) / kSlots;
    EXPECT_GE(share_30, 0.25 * 0.70);
    // Work conservation: every output-0 slot is used by someone.
    int64_t out0 = served(0, 0) + served(1, 0) + served(2, 0) + served(3, 0);
    EXPECT_EQ(out0, kSlots);
}

TEST(FillInTest, NameAndCountersCompose)
{
    Matrix<int> alloc(4, 4, 0);
    alloc(0, 0) = 500;
    auto matcher = statisticalPlusPim(4, alloc, 9);
    EXPECT_NE(matcher->name().find("Statistical"), std::string::npos);
    EXPECT_NE(matcher->name().find("PIM"), std::string::npos);
    RequestMatrix req(4);
    req.set(1, 1, 1);  // no allocation: only the fill-in can serve it
    Matching m = matcher->match(req);
    EXPECT_EQ(m.outputOf(1), 1);
    EXPECT_EQ(matcher->fillInPairs(), 1);
}

}  // namespace
}  // namespace an2
