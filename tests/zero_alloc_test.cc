// Verifies the hot-path guarantee: after warmup, InputQueuedSwitch's
// runSlot() performs zero heap allocations. A global counting operator
// new tracks every allocation; allocations are counted only inside the
// runSlot() calls themselves (arrival-side enqueues may legitimately
// grow buffers). This test must stay in its own binary: the replacement
// operator new is program-wide.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "an2/fault/fault_plan.h"
#include "an2/fault/injector.h"
#include "an2/matching/islip.h"
#include "an2/matching/pim.h"
#include "an2/matching/serial_greedy.h"
#include "an2/obs/recorder.h"
#include "an2/sim/cioq_switch.h"
#include "an2/sim/iq_switch.h"
#include "an2/sim/metrics.h"
#include "an2/sim/traffic.h"
#include "an2/topo/lan.h"
#include "an2/topo/topology.h"

// The attached-recorder assertions need the probes compiled in.
#ifdef AN2_OBS_DISABLED
#define SKIP_IF_OBS_DISABLED() \
    GTEST_SKIP() << "obs layer compiled out (AN2_OBS_DISABLED)"
#else
#define SKIP_IF_OBS_DISABLED() (void)0
#endif

namespace {

std::atomic<size_t> g_allocations{0};

}  // namespace

void*
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size))
        return p;
    throw std::bad_alloc{};
}

void*
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace an2 {
namespace {

/** Drive `sw` on a uniform load-0.9 workload; count runSlot allocations
    in slots [warmup, warmup + measured). */
size_t
allocationsDuringSteadyState(SwitchModel& sw, int warmup, int measured)
{
    UniformTraffic traffic(sw.size(), 0.9, 2026);
    std::vector<Cell> arrivals;
    size_t counted = 0;
    for (SlotTime slot = 0; slot < warmup + measured; ++slot) {
        arrivals.clear();
        traffic.generate(slot, arrivals);
        for (const Cell& c : arrivals)
            sw.acceptCell(c);
        size_t before = g_allocations.load(std::memory_order_relaxed);
        const std::vector<Cell>& departed = sw.runSlot(slot);
        size_t after = g_allocations.load(std::memory_order_relaxed);
        (void)departed;
        if (slot >= warmup)
            counted += after - before;
    }
    return counted;
}

TEST(ZeroAllocTest, PimRunSlotSteadyStateIsAllocationFree)
{
    InputQueuedSwitch sw(IqSwitchConfig{.n = 16},
                         std::make_unique<PimMatcher>(
                             PimConfig{.iterations = 4, .seed = 1}));
    EXPECT_EQ(allocationsDuringSteadyState(sw, 2000, 2000), 0u);
}

TEST(ZeroAllocTest, PipelinedPimRunSlotSteadyStateIsAllocationFree)
{
    InputQueuedSwitch sw(IqSwitchConfig{.n = 16, .pipelined = true},
                         std::make_unique<PimMatcher>(
                             PimConfig{.iterations = 4, .seed = 2}));
    EXPECT_EQ(allocationsDuringSteadyState(sw, 2000, 2000), 0u);
}

TEST(ZeroAllocTest, IslipRunSlotSteadyStateIsAllocationFree)
{
    InputQueuedSwitch sw(IqSwitchConfig{.n = 16},
                         std::make_unique<IslipMatcher>(4));
    EXPECT_EQ(allocationsDuringSteadyState(sw, 2000, 2000), 0u);
}

TEST(ZeroAllocTest, GreedyRunSlotSteadyStateIsAllocationFree)
{
    InputQueuedSwitch sw(IqSwitchConfig{.n = 16},
                         std::make_unique<SerialGreedyMatcher>(true, 3));
    EXPECT_EQ(allocationsDuringSteadyState(sw, 2000, 2000), 0u);
}

TEST(ZeroAllocTest, WarmIslipRunSlotSteadyStateIsAllocationFree)
{
    // The warm-start path (seed + repair + remember) reuses the state
    // vector sized on the first slot; steady state must stay off the
    // heap on both the full-reuse and repair tiers.
    InputQueuedSwitch sw(IqSwitchConfig{.n = 16},
                         std::make_unique<IslipMatcher>(
                             4, MatcherBackend::Auto, WarmStart::On));
    EXPECT_EQ(allocationsDuringSteadyState(sw, 2000, 2000), 0u);
}

TEST(ZeroAllocTest, WarmGreedyRunSlotSteadyStateIsAllocationFree)
{
    InputQueuedSwitch sw(IqSwitchConfig{.n = 16},
                         std::make_unique<SerialGreedyMatcher>(
                             true, 3, MatcherBackend::Auto, WarmStart::On));
    EXPECT_EQ(allocationsDuringSteadyState(sw, 2000, 2000), 0u);
}

namespace {

/**
 * SlotDriver feeding a deterministic full-load permutation (input i
 * always sends to output (i + 3) % n). Queue depth is stationary, so
 * no ring can legitimately grow after warmup — unlike Bernoulli
 * workloads, whose rare depth excursions grow arrival-side buffers
 * forever — making the batched accept + runSlot measurement exact. The
 * request matrix is also unchanged across slots (counts never cross
 * zero), so a warm matcher rides the full-reuse tier.
 */
class PermutationDriver final : public SlotDriver
{
  public:
    PermutationDriver(int n, SlotTime warmup) : n_(n), warmup_(warmup) {}

    const std::vector<Cell>& beginSlot(SlotTime slot) override
    {
        arrivals_.clear();
        // Slot 0 primes each flow with an extra cell so queue depths
        // stay >= 1 forever after: request counts then never cross
        // zero, the matrix epoch freezes, and the warm matcher rides
        // the full-reuse tier every subsequent slot.
        const int per_input = slot == 0 ? 2 : 1;
        for (PortId i = 0; i < n_; ++i) {
            for (int k = 0; k < per_input; ++k) {
                Cell c;
                c.input = i;
                c.output = (i + 3) % n_;
                c.flow = i * n_ + c.output;
                c.cls = TrafficClass::VBR;
                c.seq = slot + k;
                c.inject_slot = slot;
                c.arrival_slot = slot;
                arrivals_.push_back(c);
            }
        }
        before_ = g_allocations.load(std::memory_order_relaxed);
        return arrivals_;
    }

    void endSlot(SlotTime slot, const std::vector<Cell>&) override
    {
        size_t after = g_allocations.load(std::memory_order_relaxed);
        if (slot >= warmup_)
            counted_ += after - before_;
    }

    size_t counted() const { return counted_; }

  private:
    int n_;
    SlotTime warmup_;
    std::vector<Cell> arrivals_;
    size_t before_ = 0;
    size_t counted_ = 0;
};

}  // namespace

TEST(ZeroAllocTest, BatchedRunSlotsSteadyStateIsAllocationFree)
{
    // The batched driver loop — including the warm matcher and the
    // per-cell accepts now inside the switch's runSlots() — must be
    // allocation-free after warmup, with and without a recorder.
    InputQueuedSwitch sw(IqSwitchConfig{.n = 16},
                         std::make_unique<IslipMatcher>(
                             4, MatcherBackend::Auto, WarmStart::On));
    PermutationDriver driver(16, 100);
    sw.runSlots(0, 2000, driver);
    EXPECT_EQ(driver.counted(), 0u);
}

TEST(ZeroAllocTest, BatchedRunSlotsWithRecorderIsAllocationFree)
{
    SKIP_IF_OBS_DISABLED();
    obs::Recorder rec(
        obs::RecorderConfig{.trace_capacity = 512, .ports = 16});
    obs::attach(&rec);
    InputQueuedSwitch sw(IqSwitchConfig{.n = 16},
                         std::make_unique<IslipMatcher>(
                             4, MatcherBackend::Auto, WarmStart::On));
    PermutationDriver driver(16, 100);
    sw.runSlots(0, 2000, driver);
    obs::detach();
    EXPECT_EQ(driver.counted(), 0u);
    EXPECT_EQ(rec.counter(obs::Counter::SlotsRun), 2000);
    EXPECT_GT(rec.counter(obs::Counter::MatchEdgesReused), 0);
    EXPECT_GT(rec.counter(obs::Counter::WarmStartFullReuses), 0);
}

TEST(ZeroAllocTest, CioqRunSlotsSteadyStateIsAllocationFree)
{
    // CIOQ adds per-output class rings and up to S matching phases per
    // slot; under the stationary permutation load the rings reach their
    // high-water capacity during warmup and must never grow again.
    // (Bernoulli workloads are unsuitable here: their rare backlog
    // excursions legitimately grow the output rings inside runSlot.)
    CioqSwitchConfig cfg;
    cfg.n = 16;
    cfg.speedup = 2;
    CioqSwitch sw(cfg, std::make_unique<SerialGreedyMatcher>(true, 5));
    PermutationDriver driver(16, 100);
    sw.runSlots(0, 2000, driver);
    EXPECT_EQ(driver.counted(), 0u);
}

TEST(ZeroAllocTest, CioqWrrRunSlotsSteadyStateIsAllocationFree)
{
    CioqSwitchConfig cfg;
    cfg.n = 16;
    cfg.speedup = 3;
    cfg.service = ServiceDiscipline::Wrr;
    CioqSwitch sw(cfg, std::make_unique<SerialGreedyMatcher>(true, 6));
    PermutationDriver driver(16, 100);
    sw.runSlots(0, 2000, driver);
    EXPECT_EQ(driver.counted(), 0u);
}

TEST(ZeroAllocTest, MultiWordSwitchSteadyStateIsAllocationFree)
{
    // 80 ports: the busy masks and request rows span two words.
    InputQueuedSwitch sw(IqSwitchConfig{.n = 80},
                         std::make_unique<PimMatcher>(
                             PimConfig{.iterations = 4, .seed = 4}));
    EXPECT_EQ(allocationsDuringSteadyState(sw, 2000, 1000), 0u);
}

TEST(ZeroAllocTest, AttachedRecorderSteadyStateIsAllocationFree)
{
    SKIP_IF_OBS_DISABLED();
    // Full observation enabled — counters, histograms, and the event ring
    // (small enough that drop-oldest wraps constantly) — must add zero
    // heap traffic to the steady-state slot loop.
    obs::Recorder rec(
        obs::RecorderConfig{.trace_capacity = 512, .ports = 16});
    obs::attach(&rec);
    InputQueuedSwitch sw(IqSwitchConfig{.n = 16},
                         std::make_unique<PimMatcher>(
                             PimConfig{.iterations = 4, .seed = 5}));
    size_t allocs = allocationsDuringSteadyState(sw, 2000, 2000);
    obs::detach();
    EXPECT_EQ(allocs, 0u);
    EXPECT_EQ(rec.counter(obs::Counter::SlotsRun), 4000);
    EXPECT_GT(rec.counter(obs::Counter::MatchIterations), 0);
    EXPECT_EQ(rec.eventCount(), 512u);
    EXPECT_GT(rec.droppedEvents(), 0);
}

TEST(ZeroAllocTest, LatencyAndTimeSeriesSteadyStateIsAllocationFree)
{
    SKIP_IF_OBS_DISABLED();
    // The full telemetry tier: latency histograms (class + per-port +
    // hop delay) on every delivery and a metrics sample landing every
    // 500 slots — 8 samples inside the measured window, each copying
    // all counters, gauges, and latency quantiles into the
    // preallocated ring. Still zero heap traffic.
    obs::Recorder rec(obs::RecorderConfig{.ports = 16,
                                          .track_latency = true,
                                          .metrics_every = 500,
                                          .metrics_capacity = 64});
    obs::attach(&rec);
    InputQueuedSwitch sw(IqSwitchConfig{.n = 16},
                         std::make_unique<PimMatcher>(
                             PimConfig{.iterations = 4, .seed = 7}));
    UniformTraffic traffic(16, 0.9, 2029);
    std::vector<Cell> arrivals;
    constexpr int kWarmup = 2000, kMeasured = 4000;
    size_t counted = 0;
    for (SlotTime slot = 0; slot < kWarmup + kMeasured; ++slot) {
        arrivals.clear();
        traffic.generate(slot, arrivals);
        for (const Cell& c : arrivals)
            sw.acceptCell(c);
        // The delivery probe (as fired by the production SimDriver) is
        // part of the measured region alongside runSlot.
        size_t before = g_allocations.load(std::memory_order_relaxed);
        const std::vector<Cell>& departed = sw.runSlot(slot);
        for (const Cell& c : departed)
            rec.cellDelivered(c, slot);
        size_t after = g_allocations.load(std::memory_order_relaxed);
        if (slot >= kWarmup)
            counted += after - before;
    }
    obs::detach();
    EXPECT_EQ(counted, 0u);
    EXPECT_GT(rec.counter(obs::Counter::CellsDelivered), 0);
    EXPECT_EQ(rec.counter(obs::Counter::MetricsSamples), 11);
    EXPECT_EQ(rec.metrics().size(), 11u);
    EXPECT_GT(rec.latencyHistogram(TrafficClass::VBR).count(), 0);
    EXPECT_GT(rec.hopDelayHistogram(TrafficClass::VBR).count(), 0);
}

TEST(ZeroAllocTest, AttachedRecorderIslipCountersAllocationFree)
{
    SKIP_IF_OBS_DISABLED();
    // The iSLIP probes (rec-guarded popcounts in the word-parallel core)
    // must stay allocation-free too.
    obs::Recorder rec(obs::RecorderConfig{.trace_capacity = 256});
    obs::attach(&rec);
    InputQueuedSwitch sw(IqSwitchConfig{.n = 16},
                         std::make_unique<IslipMatcher>(4));
    size_t allocs = allocationsDuringSteadyState(sw, 2000, 2000);
    obs::detach();
    EXPECT_EQ(allocs, 0u);
    EXPECT_GT(rec.counter(obs::Counter::RequestsSeen), 0);
}

TEST(ZeroAllocTest, FaultedSlotLoopSteadyStateIsAllocationFree)
{
    // The fault path — injector beginSlot (including the port-down and
    // port-up events landing mid-measurement), per-cell arrival
    // classification with drop/corrupt draws, the masked slot loop, and
    // the always-on invariant checker — must add zero heap traffic.
    fault::FaultPlan plan = fault::FaultPlan::parse(
        "out_down(3)@2500,out_up(3)@3200,in_down(5)@2600,in_up(5)@3100,"
        "drop(0.02),corrupt(0.01)");
    fault::FaultInjector injector(16, plan, 99);
    InputQueuedSwitch sw(IqSwitchConfig{.n = 16},
                         std::make_unique<PimMatcher>(
                             PimConfig{.iterations = 4, .seed = 6}));
    UniformTraffic traffic(16, 0.9, 2027);
    std::vector<Cell> arrivals;
    constexpr int kWarmup = 2000, kMeasured = 2000;
    size_t counted = 0;
    for (SlotTime slot = 0; slot < kWarmup + kMeasured; ++slot) {
        arrivals.clear();
        traffic.generate(slot, arrivals);
        // beginSlot (event application + masks) and classifyArrival
        // (verdict draws) are measured; acceptCell stays outside, as in
        // the unfaulted tests, because arrival-side enqueues may
        // legitimately grow buffers.
        size_t before = g_allocations.load(std::memory_order_relaxed);
        injector.beginSlot(slot, &sw);
        size_t after = g_allocations.load(std::memory_order_relaxed);
        size_t slot_allocs = after - before;
        for (const Cell& c : arrivals) {
            before = g_allocations.load(std::memory_order_relaxed);
            fault::FaultInjector::Verdict v = injector.classifyArrival(c);
            after = g_allocations.load(std::memory_order_relaxed);
            slot_allocs += after - before;
            if (v == fault::FaultInjector::Verdict::Deliver)
                sw.acceptCell(c);
        }
        before = g_allocations.load(std::memory_order_relaxed);
        (void)sw.runSlot(slot);
        after = g_allocations.load(std::memory_order_relaxed);
        slot_allocs += after - before;
        if (slot >= kWarmup)
            counted += slot_allocs;
    }
    EXPECT_EQ(counted, 0u);
    EXPECT_EQ(injector.eventsApplied(), 4);
    EXPECT_GT(injector.cellsDropped(), 0);
    EXPECT_GT(injector.cellsCorrupted(), 0);
}

TEST(ZeroAllocTest, NetworkSteadyStateIsAllocationFree)
{
    // Whole-network steady state: controllers injecting VBR + CBR,
    // switches matching and forwarding, links shifting cells, and
    // delivery bookkeeping in the controllers' flat per-flow stores.
    // After warmup frames have sized every ring and flat container,
    // further serial frames must not touch the heap.
    topo::Topology topo = topo::Topology::star(4, 2);
    topo::LanConfig config;
    config.seed = 31;
    config.matcher = [](int /*ports*/, uint64_t seed) {
        return std::make_unique<PimMatcher>(PimConfig{
            .iterations = 4, .seed = seed});
    };
    topo::Lan lan(topo, config);
    topo::TrafficSpec vbr;
    vbr.cls = TrafficClass::VBR;
    vbr.vbr_rate = 0.2;
    lan.placeMatrix(topo::Pattern::Uniform, vbr, /*seed=*/7);
    topo::TrafficSpec cbr;
    cbr.cls = TrafficClass::CBR;
    cbr.cbr_cells_per_frame = 2;
    lan.placeMatrix(topo::Pattern::Uniform, cbr, /*seed=*/8);

    lan.runFrames(12);  // warmup: grow rings, flat maps, scratch
    size_t before = g_allocations.load(std::memory_order_relaxed);
    lan.runFrames(64);
    size_t after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u);
    topo::LanStats stats = lan.stats();
    EXPECT_GT(stats.delivered, 0);
}

TEST(ZeroAllocTest, MetricsDeliverySteadyStateIsAllocationFree)
{
    // Delivery bookkeeping (delay stats + per-connection matrix +
    // per-flow counts) must not allocate once the collector is built —
    // the per-flow map previously allocated a node on each flow's first
    // delivery mid-run.
    MetricsCollector m(0, 16);
    Cell c;
    size_t before = g_allocations.load(std::memory_order_relaxed);
    for (int round = 0; round < 3; ++round) {
        for (int f = 0; f < 256; ++f) {
            c.flow = f;
            c.input = f % 16;
            c.output = (f / 16) % 16;
            c.inject_slot = 10;
            m.noteDelivered(c, 12);
        }
    }
    size_t after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u);
    EXPECT_EQ(m.delivered(), 3 * 256);
    EXPECT_EQ(m.deliveredPerFlow().at(0), 3);
}

TEST(ZeroAllocTest, CountingAllocatorIsLive)
{
    // Sanity-check the instrument itself.
    size_t before = g_allocations.load();
    auto* v = new std::vector<int>(100);
    size_t after = g_allocations.load();
    delete v;
    EXPECT_GT(after, before);
}

}  // namespace
}  // namespace an2
