// Verifies the hot-path guarantee: after warmup, InputQueuedSwitch's
// runSlot() performs zero heap allocations. A global counting operator
// new tracks every allocation; allocations are counted only inside the
// runSlot() calls themselves (arrival-side enqueues may legitimately
// grow buffers). This test must stay in its own binary: the replacement
// operator new is program-wide.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "an2/matching/islip.h"
#include "an2/matching/pim.h"
#include "an2/matching/serial_greedy.h"
#include "an2/sim/iq_switch.h"
#include "an2/sim/traffic.h"

namespace {

std::atomic<size_t> g_allocations{0};

}  // namespace

void*
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size))
        return p;
    throw std::bad_alloc{};
}

void*
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace an2 {
namespace {

/** Drive `sw` on a uniform load-0.9 workload; count runSlot allocations
    in slots [warmup, warmup + measured). */
size_t
allocationsDuringSteadyState(SwitchModel& sw, int warmup, int measured)
{
    UniformTraffic traffic(sw.size(), 0.9, 2026);
    std::vector<Cell> arrivals;
    size_t counted = 0;
    for (SlotTime slot = 0; slot < warmup + measured; ++slot) {
        arrivals.clear();
        traffic.generate(slot, arrivals);
        for (const Cell& c : arrivals)
            sw.acceptCell(c);
        size_t before = g_allocations.load(std::memory_order_relaxed);
        const std::vector<Cell>& departed = sw.runSlot(slot);
        size_t after = g_allocations.load(std::memory_order_relaxed);
        (void)departed;
        if (slot >= warmup)
            counted += after - before;
    }
    return counted;
}

TEST(ZeroAllocTest, PimRunSlotSteadyStateIsAllocationFree)
{
    InputQueuedSwitch sw(IqSwitchConfig{.n = 16},
                         std::make_unique<PimMatcher>(
                             PimConfig{.iterations = 4, .seed = 1}));
    EXPECT_EQ(allocationsDuringSteadyState(sw, 2000, 2000), 0u);
}

TEST(ZeroAllocTest, PipelinedPimRunSlotSteadyStateIsAllocationFree)
{
    InputQueuedSwitch sw(IqSwitchConfig{.n = 16, .pipelined = true},
                         std::make_unique<PimMatcher>(
                             PimConfig{.iterations = 4, .seed = 2}));
    EXPECT_EQ(allocationsDuringSteadyState(sw, 2000, 2000), 0u);
}

TEST(ZeroAllocTest, IslipRunSlotSteadyStateIsAllocationFree)
{
    InputQueuedSwitch sw(IqSwitchConfig{.n = 16},
                         std::make_unique<IslipMatcher>(4));
    EXPECT_EQ(allocationsDuringSteadyState(sw, 2000, 2000), 0u);
}

TEST(ZeroAllocTest, GreedyRunSlotSteadyStateIsAllocationFree)
{
    InputQueuedSwitch sw(IqSwitchConfig{.n = 16},
                         std::make_unique<SerialGreedyMatcher>(true, 3));
    EXPECT_EQ(allocationsDuringSteadyState(sw, 2000, 2000), 0u);
}

TEST(ZeroAllocTest, MultiWordSwitchSteadyStateIsAllocationFree)
{
    // 80 ports: the busy masks and request rows span two words.
    InputQueuedSwitch sw(IqSwitchConfig{.n = 80},
                         std::make_unique<PimMatcher>(
                             PimConfig{.iterations = 4, .seed = 4}));
    EXPECT_EQ(allocationsDuringSteadyState(sw, 2000, 1000), 0u);
}

TEST(ZeroAllocTest, CountingAllocatorIsLive)
{
    // Sanity-check the instrument itself.
    size_t before = g_allocations.load();
    auto* v = new std::vector<int>(100);
    size_t after = g_allocations.load();
    delete v;
    EXPECT_GT(after, before);
}

}  // namespace
}  // namespace an2
