// Conformance property suite for every switch architecture: cell
// conservation, per-flow FIFO order, no cell fabrication, and
// work-conservation sanity, across workloads. Uses only the public API
// via the umbrella header (doubling as an include-sanity test).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "an2/an2.h"

namespace an2 {
namespace {

using SwitchFactory = std::function<std::unique_ptr<SwitchModel>(int n)>;

struct NamedSwitch
{
    std::string label;
    SwitchFactory make;
};

std::vector<NamedSwitch>
allSwitches()
{
    std::vector<NamedSwitch> fs;
    fs.push_back({"fifo", [](int n) {
                      return std::make_unique<FifoSwitch>(n, 11);
                  }});
    fs.push_back({"fifo_windowed", [](int n) {
                      return std::make_unique<FifoSwitch>(n, 12, 4, 4);
                  }});
    fs.push_back({"oq", [](int n) {
                      return std::make_unique<OutputQueuedSwitch>(n);
                  }});
    fs.push_back({"iq_pim", [](int n) {
                      return std::make_unique<InputQueuedSwitch>(
                          IqSwitchConfig{.n = n},
                          std::make_unique<PimMatcher>(
                              PimConfig{.iterations = 4, .seed = 13}));
                  }});
    fs.push_back({"iq_pim_speedup2", [](int n) {
                      PimConfig cfg;
                      cfg.iterations = 4;
                      cfg.output_capacity = 2;
                      cfg.seed = 14;
                      return std::make_unique<InputQueuedSwitch>(
                          IqSwitchConfig{.n = n, .output_speedup = 2},
                          std::make_unique<PimMatcher>(cfg));
                  }});
    fs.push_back({"iq_pim_pipelined", [](int n) {
                      return std::make_unique<InputQueuedSwitch>(
                          IqSwitchConfig{.n = n,
                                         .output_speedup = 1,
                                         .pipelined = true},
                          std::make_unique<PimMatcher>(
                              PimConfig{.iterations = 4, .seed = 17}));
                  }});
    fs.push_back({"iq_islip", [](int n) {
                      return std::make_unique<InputQueuedSwitch>(
                          IqSwitchConfig{.n = n},
                          std::make_unique<IslipMatcher>(4));
                  }});
    fs.push_back({"iq_maximum", [](int n) {
                      return std::make_unique<InputQueuedSwitch>(
                          IqSwitchConfig{.n = n},
                          std::make_unique<HopcroftKarpMatcher>());
                  }});
    fs.push_back({"iq_stat_fillin", [](int n) {
                      Matrix<int> alloc(n, n, 1000 / n);
                      StatisticalConfig scfg;
                      scfg.units = 1000;
                      scfg.seed = 15;
                      PimConfig pcfg;
                      pcfg.iterations = 4;
                      pcfg.seed = 16;
                      return std::make_unique<InputQueuedSwitch>(
                          IqSwitchConfig{.n = n},
                          std::make_unique<FillInMatcher>(
                              std::make_unique<StatisticalMatcher>(alloc,
                                                                   scfg),
                              std::make_unique<PimMatcher>(pcfg)));
                  }});
    fs.push_back({"virtual_clock", [](int n) {
                      auto sw = std::make_unique<VirtualClockSwitch>(n);
                      sw->setDefaultRate(0.1);
                      return sw;
                  }});
    fs.push_back({"cioq_s2_strict", [](int n) {
                      CioqSwitchConfig cfg;
                      cfg.n = n;
                      cfg.speedup = 2;
                      return std::make_unique<CioqSwitch>(
                          cfg,
                          std::make_unique<SerialGreedyMatcher>(true, 18));
                  }});
    fs.push_back({"cioq_s3_wrr", [](int n) {
                      CioqSwitchConfig cfg;
                      cfg.n = n;
                      cfg.speedup = 3;
                      cfg.service = ServiceDiscipline::Wrr;
                      return std::make_unique<CioqSwitch>(
                          cfg,
                          std::make_unique<SerialGreedyMatcher>(true, 19));
                  }});
    return fs;
}

std::unique_ptr<TrafficGenerator>
makeWorkload(const std::string& kind, int n, double load, uint64_t seed)
{
    if (kind == "uniform")
        return std::make_unique<UniformTraffic>(n, load, seed);
    if (kind == "bursty")
        return std::make_unique<BurstyTraffic>(n, std::min(load, 0.95),
                                               8.0, seed);
    if (kind == "periodic")
        return std::make_unique<PeriodicBurstTraffic>(n, load, seed, 16);
    AN2_PANIC("unknown workload " << kind);
}

using Param = ::testing::tuple<int, std::string>;

class SwitchConformanceTest : public ::testing::TestWithParam<Param>
{
  protected:
    std::unique_ptr<SwitchModel>
    makeSwitch(int n)
    {
        return allSwitches()[static_cast<size_t>(
                                 ::testing::get<0>(GetParam()))]
            .make(n);
    }

    std::string workload() const { return ::testing::get<1>(GetParam()); }
};

TEST_P(SwitchConformanceTest, ConservesCellsAndPreservesFlowOrder)
{
    constexpr int kN = 8;
    auto sw = makeSwitch(kN);
    auto traffic = makeWorkload(workload(), kN, 0.7, 21);
    std::map<FlowId, int64_t> last_seq;
    SimConfig cfg;
    cfg.slots = 8'000;
    cfg.warmup = 1'000;
    cfg.on_delivered = [&](const Cell& c, SlotTime) {
        auto [it, inserted] = last_seq.try_emplace(c.flow, -1);
        EXPECT_GT(c.seq, it->second)
            << "flow " << c.flow << " re-ordered";
        it->second = c.seq;
    };
    // runSimulation() itself asserts conservation at exit.
    SimResult res = runSimulation(*sw, *traffic, cfg);
    EXPECT_GT(res.delivered, 0);
    EXPECT_LE(res.throughput, 1.0 + 1e-9);
}

TEST_P(SwitchConformanceTest, DrainsCompletelyAfterArrivalsStop)
{
    constexpr int kN = 4;
    auto sw = makeSwitch(kN);
    auto traffic = makeWorkload(workload(), kN, 0.5, 22);
    std::vector<Cell> arrivals;
    for (SlotTime slot = 0; slot < 500; ++slot) {
        arrivals.clear();
        traffic->generate(slot, arrivals);
        for (const Cell& c : arrivals)
            sw->acceptCell(c);
        sw->runSlot(slot);
    }
    // No new arrivals: every buffered cell must eventually leave.
    SlotTime slot = 500;
    int guard = 100'000;
    while (sw->bufferedCells() > 0 && guard-- > 0)
        sw->runSlot(slot++);
    EXPECT_EQ(sw->bufferedCells(), 0) << "switch failed to drain";
}

TEST_P(SwitchConformanceTest, IdleSwitchStaysIdle)
{
    auto sw = makeSwitch(4);
    for (SlotTime slot = 0; slot < 32; ++slot)
        EXPECT_TRUE(sw->runSlot(slot).empty());
    EXPECT_EQ(sw->bufferedCells(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllSwitches, SwitchConformanceTest,
    ::testing::Combine(::testing::Range(0, 12),
                       ::testing::Values(std::string("uniform"),
                                         std::string("bursty"),
                                         std::string("periodic"))),
    [](const ::testing::TestParamInfo<Param>& info) {
        return allSwitches()[static_cast<size_t>(
                                 ::testing::get<0>(info.param))]
                   .label +
               "_" + ::testing::get<1>(info.param);
    });

}  // namespace
}  // namespace an2
