// Tests for the queueing substrates: per-flow FIFOs, the random-access
// input buffer with eligible-flow lists, and output queues.
#include <gtest/gtest.h>

#include "an2/base/ring.h"
#include "an2/matching/wordset.h"
#include "an2/queueing/flow_queue.h"
#include "an2/queueing/output_queue.h"
#include "an2/queueing/voq.h"

namespace an2 {
namespace {

Cell
makeCell(FlowId flow, PortId input, PortId output, int64_t seq)
{
    Cell c;
    c.flow = flow;
    c.input = input;
    c.output = output;
    c.seq = seq;
    return c;
}

// ----------------------------------------------------------- FlowQueue

TEST(FlowQueueTest, FifoOrder)
{
    FlowQueue q;
    for (int s = 0; s < 5; ++s)
        q.push(makeCell(0, 0, 0, s));
    EXPECT_EQ(q.size(), 5);
    for (int s = 0; s < 5; ++s)
        EXPECT_EQ(q.pop().seq, s);
    EXPECT_TRUE(q.empty());
}

TEST(FlowQueueTest, FrontDoesNotPop)
{
    FlowQueue q;
    q.push(makeCell(0, 0, 0, 7));
    EXPECT_EQ(q.front().seq, 7);
    EXPECT_EQ(q.size(), 1);
}

TEST(FlowQueueTest, EmptyAccessPanics)
{
    FlowQueue q;
    EXPECT_THROW(q.front(), InternalError);
    EXPECT_THROW(q.pop(), InternalError);
}

// ---------------------------------------------------------- InputBuffer

TEST(InputBufferTest, CountsPerOutput)
{
    InputBuffer buf(4);
    buf.enqueue(makeCell(0, 0, 1, 0));
    buf.enqueue(makeCell(0, 0, 1, 1));
    buf.enqueue(makeCell(1, 0, 2, 0));
    EXPECT_EQ(buf.totalCells(), 3);
    EXPECT_EQ(buf.cellCountFor(1), 2);
    EXPECT_EQ(buf.cellCountFor(2), 1);
    EXPECT_EQ(buf.cellCountFor(0), 0);
    EXPECT_TRUE(buf.hasCellFor(1));
    EXPECT_FALSE(buf.hasCellFor(3));
}

TEST(InputBufferTest, PerFlowFifoOrder)
{
    InputBuffer buf(4);
    for (int s = 0; s < 10; ++s)
        buf.enqueue(makeCell(0, 0, 2, s));
    for (int s = 0; s < 10; ++s)
        EXPECT_EQ(buf.dequeueFor(2).seq, s);
}

TEST(InputBufferTest, RoundRobinAmongFlowsOfSameOutput)
{
    // Two flows, both to output 1; service must alternate (§3.3).
    InputBuffer buf(4);
    for (int s = 0; s < 3; ++s) {
        buf.enqueue(makeCell(10, 0, 1, s));
        buf.enqueue(makeCell(20, 0, 1, s));
    }
    std::vector<FlowId> order;
    while (buf.hasCellFor(1))
        order.push_back(buf.dequeueFor(1).flow);
    ASSERT_EQ(order.size(), 6u);
    EXPECT_EQ(order[0], 10);
    EXPECT_EQ(order[1], 20);
    EXPECT_EQ(order[2], 10);
    EXPECT_EQ(order[3], 20);
}

TEST(InputBufferTest, EligibleFlowCount)
{
    InputBuffer buf(4);
    EXPECT_EQ(buf.eligibleFlowsFor(1), 0);
    buf.enqueue(makeCell(1, 0, 1, 0));
    buf.enqueue(makeCell(2, 0, 1, 0));
    buf.enqueue(makeCell(1, 0, 1, 1));
    EXPECT_EQ(buf.eligibleFlowsFor(1), 2);
}

TEST(InputBufferTest, DequeueEmptyOutputRejected)
{
    InputBuffer buf(4);
    EXPECT_THROW(buf.dequeueFor(0), UsageError);
}

TEST(InputBufferTest, DequeueSpecificFlow)
{
    InputBuffer buf(4);
    buf.enqueue(makeCell(5, 0, 3, 0));
    buf.enqueue(makeCell(6, 0, 3, 0));
    EXPECT_TRUE(buf.flowHasCell(6));
    Cell c = buf.dequeueFlow(6);
    EXPECT_EQ(c.flow, 6);
    EXPECT_FALSE(buf.flowHasCell(6));
    EXPECT_EQ(buf.cellCountFor(3), 1);
}

TEST(InputBufferTest, StaleEligibleEntryAfterDequeueFlow)
{
    // dequeueFlow leaves a stale entry in the eligible list; a later
    // dequeueFor must skip it and still find the live flow.
    InputBuffer buf(4);
    buf.enqueue(makeCell(1, 0, 2, 0));  // flow 1 listed first
    buf.enqueue(makeCell(2, 0, 2, 0));
    buf.dequeueFlow(1);  // empties flow 1, entry goes stale
    ASSERT_TRUE(buf.hasCellFor(2));
    EXPECT_EQ(buf.dequeueFor(2).flow, 2);
    EXPECT_FALSE(buf.hasCellFor(2));
}

TEST(InputBufferTest, ReEnqueueAfterStaleEntryStillReachable)
{
    InputBuffer buf(4);
    buf.enqueue(makeCell(1, 0, 2, 0));
    buf.dequeueFlow(1);  // stale but still listed
    buf.enqueue(makeCell(1, 0, 2, 1));  // flag prevents double listing
    EXPECT_EQ(buf.dequeueFor(2).seq, 1);
    EXPECT_EQ(buf.totalCells(), 0);
}

TEST(InputBufferTest, InvalidCellsRejected)
{
    InputBuffer buf(2);
    Cell no_flow = makeCell(kNoFlow, 0, 0, 0);
    EXPECT_THROW(buf.enqueue(no_flow), UsageError);
    Cell bad_out = makeCell(0, 0, 5, 0);
    EXPECT_THROW(buf.enqueue(bad_out), UsageError);
}

TEST(InputBufferTest, FlowCannotChangeOutput)
{
    // All cells of a flow take the same path (paper §2); a cell of an
    // existing flow claiming a different output is a routing bug.
    InputBuffer buf(4);
    buf.enqueue(makeCell(1, 0, 2, 0));
    EXPECT_THROW(buf.enqueue(makeCell(1, 0, 3, 1)), UsageError);
    // The original output remains bound even after the queue drains.
    buf.dequeueFor(2);
    EXPECT_THROW(buf.enqueue(makeCell(1, 0, 3, 1)), UsageError);
    EXPECT_NO_THROW(buf.enqueue(makeCell(1, 0, 2, 1)));
}

TEST(InputBufferTest, DequeueFlowWithoutCellRejected)
{
    InputBuffer buf(2);
    EXPECT_THROW(buf.dequeueFlow(3), UsageError);
}

// ---------------------------------------------------------- OutputQueue

TEST(OutputQueueTest, FifoAndOccupancy)
{
    OutputQueue q;
    for (int s = 0; s < 4; ++s)
        q.push(makeCell(0, 0, 0, s));
    q.noteOccupancy();
    EXPECT_EQ(q.size(), 4);
    EXPECT_EQ(q.maxOccupancy(), 4);
    EXPECT_EQ(q.pop().seq, 0);
    q.noteOccupancy();
    EXPECT_EQ(q.maxOccupancy(), 4);  // peak is sticky
}

TEST(OutputQueueTest, PopEmptyPanics)
{
    OutputQueue q;
    EXPECT_THROW(q.pop(), InternalError);
}

// ------------------------------------------------- InputBuffer occupancy

TEST(InputBufferTest, OccupancyMaskTracksQueuedOutputs)
{
    InputBuffer buf(70);  // two mask words
    EXPECT_EQ(buf.occupancyWords(), 2);
    EXPECT_FALSE(wordset::anySet(buf.occupancyMask(), 2));

    buf.enqueue(makeCell(1, 0, 3, 0));
    buf.enqueue(makeCell(1, 0, 3, 1));
    buf.enqueue(makeCell(2, 0, 68, 2));
    EXPECT_TRUE(wordset::testBit(buf.occupancyMask(), 3));
    EXPECT_TRUE(wordset::testBit(buf.occupancyMask(), 68));
    EXPECT_EQ(wordset::popcountAll(buf.occupancyMask(), 2), 2);

    // The bit stays while any cell remains, clears on the last dequeue.
    buf.dequeueFor(3);
    EXPECT_TRUE(wordset::testBit(buf.occupancyMask(), 3));
    buf.dequeueFor(3);
    EXPECT_FALSE(wordset::testBit(buf.occupancyMask(), 3));
    buf.dequeueFor(68);
    EXPECT_FALSE(wordset::anySet(buf.occupancyMask(), 2));
}

TEST(InputBufferTest, OccupancyMaskTracksDequeueFlow)
{
    InputBuffer buf(8);
    buf.enqueue(makeCell(5, 0, 2, 0));
    EXPECT_TRUE(wordset::testBit(buf.occupancyMask(), 2));
    buf.dequeueFlow(5);
    EXPECT_FALSE(wordset::testBit(buf.occupancyMask(), 2));
}

// ------------------------------------------------------------- RingQueue

TEST(RingQueueTest, FifoOrderAcrossGrowth)
{
    RingQueue<int> q;
    EXPECT_TRUE(q.empty());
    for (int i = 0; i < 100; ++i)
        q.push_back(i);
    EXPECT_EQ(q.size(), 100u);
    EXPECT_EQ(q.at(7), 7);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(q.front(), i);
        q.pop_front();
    }
    EXPECT_TRUE(q.empty());
}

TEST(RingQueueTest, RotationWrapsAroundStorage)
{
    // pop_front + push_back cycles far beyond the capacity: the head
    // index must wrap without corrupting FIFO order.
    RingQueue<int> q;
    for (int i = 0; i < 5; ++i)
        q.push_back(i);
    for (int i = 5; i < 500; ++i) {
        EXPECT_EQ(q.front(), i - 5);
        q.pop_front();
        q.push_back(i);
    }
    EXPECT_EQ(q.size(), 5u);
    for (int i = 495; i < 500; ++i) {
        EXPECT_EQ(q.front(), i);
        q.pop_front();
    }
}

TEST(RingQueueTest, ClearResetsWithoutShrinking)
{
    RingQueue<int> q;
    for (int i = 0; i < 20; ++i)
        q.push_back(i);
    q.clear();
    EXPECT_TRUE(q.empty());
    q.push_back(42);
    EXPECT_EQ(q.front(), 42);
}

}  // namespace
}  // namespace an2
