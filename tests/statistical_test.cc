// Tests for statistical matching (an2/matching/statistical.h) and the
// Appendix C throughput fractions.
#include "an2/matching/statistical.h"

#include <gtest/gtest.h>

#include <cmath>

namespace an2 {
namespace {

Matrix<int>
uniformAllocation(int n, int units_per_pair)
{
    return Matrix<int>(n, n, units_per_pair);
}

TEST(StatisticalFractionsTest, ApproachTheoreticalLimits)
{
    // (1 - 1/e) ~ 0.632, (1 - 1/e)(1 + 1/e^2) ~ 0.718 for large X.
    EXPECT_NEAR(statisticalOneRoundFraction(100000), 1.0 - 1.0 / M_E, 1e-4);
    EXPECT_NEAR(statisticalTwoRoundFraction(100000),
                (1.0 - 1.0 / M_E) * (1.0 + 1.0 / (M_E * M_E)), 1e-4);
}

TEST(StatisticalFractionsTest, OneRoundBelowTwoRounds)
{
    for (int units : {10, 100, 1000}) {
        EXPECT_LT(statisticalOneRoundFraction(units),
                  statisticalTwoRoundFraction(units));
    }
}

TEST(StatisticalMatcherTest, RejectsOverAllocation)
{
    Matrix<int> alloc(2, 2, 0);
    alloc(0, 0) = 80;
    alloc(0, 1) = 30;  // row 0 sums to 110 > 100
    StatisticalConfig cfg;
    cfg.units = 100;
    EXPECT_THROW(StatisticalMatcher(alloc, cfg), UsageError);
}

TEST(StatisticalMatcherTest, RejectsBadConfig)
{
    Matrix<int> alloc(2, 2, 10);
    StatisticalConfig cfg;
    cfg.units = 1;
    EXPECT_THROW(StatisticalMatcher(alloc, cfg), UsageError);
    cfg.units = 100;
    cfg.rounds = 3;
    EXPECT_THROW(StatisticalMatcher(alloc, cfg), UsageError);
}

TEST(StatisticalMatcherTest, ZeroAllocationNeverMatches)
{
    Matrix<int> alloc(4, 4, 0);
    alloc(0, 0) = 50;
    StatisticalConfig cfg;
    cfg.units = 100;
    cfg.rounds = 2;
    StatisticalMatcher sm(alloc, cfg);
    for (int t = 0; t < 500; ++t) {
        Matching m = sm.matchAllocated();
        for (auto [i, j] : m.pairs()) {
            EXPECT_EQ(i, 0);
            EXPECT_EQ(j, 0);
        }
    }
}

TEST(StatisticalMatcherTest, MatchesAreConflictFree)
{
    StatisticalConfig cfg;
    cfg.units = 100;
    cfg.rounds = 2;
    StatisticalMatcher sm(uniformAllocation(8, 12), cfg);
    for (int t = 0; t < 300; ++t) {
        Matching m = sm.matchAllocated();
        std::vector<int> in_used(8, 0);
        std::vector<int> out_used(8, 0);
        for (auto [i, j] : m.pairs()) {
            ++in_used[static_cast<size_t>(i)];
            ++out_used[static_cast<size_t>(j)];
        }
        for (int u : in_used)
            EXPECT_LE(u, 1);
        for (int u : out_used)
            EXPECT_LE(u, 1);
    }
}

TEST(StatisticalMatcherTest, OneRoundDeliversExpectedFraction)
{
    // Full allocation: every pair of an 4x4 switch gets X/4 units. Each
    // connection should be matched in ~ (X_ij/X)(1 - 1/e) of slots.
    constexpr int kN = 4;
    constexpr int kUnits = 1000;
    StatisticalConfig cfg;
    cfg.units = kUnits;
    cfg.rounds = 1;
    cfg.seed = 11;
    StatisticalMatcher sm(uniformAllocation(kN, kUnits / kN), cfg);
    Matrix<int> matched(kN, kN, 0);
    constexpr int kSlots = 60000;
    for (int s = 0; s < kSlots; ++s)
        for (auto [i, j] : sm.matchAllocated().pairs())
            ++matched(i, j);
    double expect = (1.0 / kN) * statisticalOneRoundFraction(kUnits);
    for (int i = 0; i < kN; ++i) {
        for (int j = 0; j < kN; ++j) {
            double rate = matched(i, j) / static_cast<double>(kSlots);
            EXPECT_NEAR(rate, expect, 0.012)
                << "connection " << i << "->" << j;
        }
    }
}

TEST(StatisticalMatcherTest, TwoRoundsDeliverAtLeast72Percent)
{
    constexpr int kN = 4;
    constexpr int kUnits = 1000;
    StatisticalConfig cfg;
    cfg.units = kUnits;
    cfg.rounds = 2;
    cfg.seed = 13;
    StatisticalMatcher sm(uniformAllocation(kN, kUnits / kN), cfg);
    Matrix<int> matched(kN, kN, 0);
    constexpr int kSlots = 60000;
    for (int s = 0; s < kSlots; ++s)
        for (auto [i, j] : sm.matchAllocated().pairs())
            ++matched(i, j);
    double floor_fraction = statisticalTwoRoundFraction(kUnits);
    for (int i = 0; i < kN; ++i) {
        for (int j = 0; j < kN; ++j) {
            double delivered = matched(i, j) / static_cast<double>(kSlots);
            double allocated = 1.0 / kN;
            // Appendix C proves delivered >= allocated * 0.72 (up to
            // sampling noise).
            EXPECT_GE(delivered, allocated * floor_fraction - 0.012)
                << "connection " << i << "->" << j;
        }
    }
}

TEST(StatisticalMatcherTest, ProportionalToUnevenAllocations)
{
    // Input 0 splits 90/10 between outputs 0 and 1; delivered throughput
    // must honor the ratio.
    constexpr int kUnits = 1000;
    Matrix<int> alloc(2, 2, 0);
    alloc(0, 0) = 900;
    alloc(0, 1) = 100;
    StatisticalConfig cfg;
    cfg.units = kUnits;
    cfg.rounds = 1;
    cfg.seed = 17;
    StatisticalMatcher sm(alloc, cfg);
    Matrix<int> matched(2, 2, 0);
    constexpr int kSlots = 60000;
    for (int s = 0; s < kSlots; ++s)
        for (auto [i, j] : sm.matchAllocated().pairs())
            ++matched(i, j);
    double f = statisticalOneRoundFraction(kUnits);
    EXPECT_NEAR(matched(0, 0) / static_cast<double>(kSlots), 0.9 * f, 0.012);
    EXPECT_NEAR(matched(0, 1) / static_cast<double>(kSlots), 0.1 * f, 0.012);
}

TEST(StatisticalMatcherTest, RequestFilteringDropsIdlePairs)
{
    StatisticalConfig cfg;
    cfg.units = 100;
    cfg.seed = 19;
    StatisticalMatcher sm(uniformAllocation(4, 25), cfg);
    RequestMatrix req(4);
    req.set(2, 1, 1);  // only connection with a queued cell
    for (int t = 0; t < 200; ++t) {
        Matching m = sm.match(req);
        EXPECT_TRUE(m.isLegalFor(req));
        for (auto [i, j] : m.pairs()) {
            EXPECT_EQ(i, 2);
            EXPECT_EQ(j, 1);
        }
    }
}

TEST(StatisticalMatcherTest, SetAllocationUpdatesRates)
{
    constexpr int kUnits = 1000;
    Matrix<int> alloc(2, 2, 0);
    alloc(0, 0) = 500;
    StatisticalConfig cfg;
    cfg.units = kUnits;
    cfg.rounds = 1;
    cfg.seed = 23;
    StatisticalMatcher sm(alloc, cfg);
    EXPECT_EQ(sm.allocation(0, 0), 500);
    sm.setAllocation(0, 0, 100);
    sm.setAllocation(1, 1, 800);
    EXPECT_EQ(sm.allocation(0, 0), 100);

    Matrix<int> matched(2, 2, 0);
    constexpr int kSlots = 40000;
    for (int s = 0; s < kSlots; ++s)
        for (auto [i, j] : sm.matchAllocated().pairs())
            ++matched(i, j);
    double f = statisticalOneRoundFraction(kUnits);
    EXPECT_NEAR(matched(0, 0) / static_cast<double>(kSlots), 0.1 * f, 0.012);
    EXPECT_NEAR(matched(1, 1) / static_cast<double>(kSlots), 0.8 * f, 0.012);
}

TEST(StatisticalMatcherTest, SetAllocationRejectsOverCommit)
{
    Matrix<int> alloc(2, 2, 0);
    alloc(0, 0) = 90;
    StatisticalConfig cfg;
    cfg.units = 100;
    StatisticalMatcher sm(alloc, cfg);
    EXPECT_THROW(sm.setAllocation(0, 1, 20), UsageError);
}

TEST(StatisticalMatcherTest, MismatchedRequestSizeRejected)
{
    StatisticalConfig cfg;
    cfg.units = 100;
    StatisticalMatcher sm(uniformAllocation(4, 10), cfg);
    RequestMatrix req(5);
    EXPECT_THROW(sm.match(req), UsageError);
}

TEST(StatisticalMatcherTest, GrantDistributionMatchesAllocations)
{
    // Appendix C, end to end for an asymmetric column: three inputs
    // share output 0 with different allocations; each input's measured
    // match rate must equal the closed-form per-connection probability.
    constexpr int kUnits = 100;
    Matrix<int> alloc(4, 4, 0);
    alloc(0, 0) = 50;
    alloc(1, 0) = 30;
    alloc(2, 0) = 15;  // output 0: 95/100 allocated; 5% imaginary
    StatisticalConfig cfg;
    cfg.units = kUnits;
    cfg.rounds = 1;
    cfg.seed = 31;
    StatisticalMatcher sm(alloc, cfg);
    constexpr int kSlots = 200'000;
    std::vector<int64_t> matched(4, 0);
    for (int s = 0; s < kSlots; ++s)
        for (auto [i, j] : sm.matchAllocated().pairs())
            ++matched[static_cast<size_t>(i)];
    // Appendix C's exact per-connection probability, valid for any
    // X[i][j]: Pr{i matches j} = (X_ij/X) * (1 - ((X-1)/X)^X). The
    // measured shares must match it connection by connection, which
    // pins down both the grant lottery and the virtual-grant tables.
    double base = 1.0 - std::pow((kUnits - 1.0) / kUnits, kUnits);
    EXPECT_NEAR(matched[0] / static_cast<double>(kSlots), 0.50 * base,
                0.01);
    EXPECT_NEAR(matched[1] / static_cast<double>(kSlots), 0.30 * base,
                0.01);
    EXPECT_NEAR(matched[2] / static_cast<double>(kSlots), 0.15 * base,
                0.01);
    EXPECT_EQ(matched[3], 0);
}

TEST(StatisticalMatcherTest, SmallUnitCountsStillRespectBudgets)
{
    // X as small as 2 must still produce conflict-free matchings and
    // never exceed allocations' relative ordering.
    Matrix<int> alloc(2, 2, 0);
    alloc(0, 0) = 2;
    alloc(1, 1) = 1;
    StatisticalConfig cfg;
    cfg.units = 2;
    cfg.rounds = 2;
    cfg.seed = 33;
    StatisticalMatcher sm(alloc, cfg);
    int64_t m00 = 0;
    int64_t m11 = 0;
    for (int s = 0; s < 20'000; ++s) {
        for (auto [i, j] : sm.matchAllocated().pairs()) {
            if (i == 0)
                ++m00;
            else
                ++m11;
        }
    }
    EXPECT_GT(m00, m11);
    EXPECT_GT(m11, 0);
}

TEST(StatisticalMatcherTest, NameEncodesConfig)
{
    StatisticalConfig cfg;
    cfg.units = 100;
    cfg.rounds = 2;
    StatisticalMatcher sm(uniformAllocation(2, 10), cfg);
    EXPECT_EQ(sm.name(), "Statistical(2-round,X=100)");
}

}  // namespace
}  // namespace an2
