// Tests for the Slepian-Duguid incremental scheduler
// (an2/cbr/slepian_duguid.h), including the Figure 6/7 worked example and
// randomized property sweeps.
#include "an2/cbr/slepian_duguid.h"

#include <gtest/gtest.h>

#include <tuple>

#include "an2/base/rng.h"

namespace an2 {
namespace {

/** Assert the schedule realizes its reservations and is conflict-free. */
void
expectConsistent(const SlepianDuguidScheduler& sd)
{
    EXPECT_TRUE(sd.schedule().realizes(sd.reservations()));
}

TEST(SlepianDuguidTest, SingleReservationPlaced)
{
    SlepianDuguidScheduler sd(4, 3);
    EXPECT_TRUE(sd.addReservation(1, 2, 2));
    EXPECT_EQ(sd.reservations().reserved(1, 2), 2);
    expectConsistent(sd);
}

TEST(SlepianDuguidTest, RejectsOverCommitWithoutChange)
{
    SlepianDuguidScheduler sd(4, 3);
    EXPECT_TRUE(sd.addReservation(0, 0, 3));
    EXPECT_FALSE(sd.addReservation(0, 1, 1));  // input 0 full
    EXPECT_FALSE(sd.addReservation(1, 0, 1));  // output 0 full
    EXPECT_EQ(sd.reservations().total(), 3);
    expectConsistent(sd);
}

TEST(SlepianDuguidTest, Figure6and7Example)
{
    // Build the Figure 6 reservations, then add the Figure 7 reservation
    // of one cell/frame from input 2 to output 4 (1-based; (1,3) here).
    SlepianDuguidScheduler sd(4, 3);
    EXPECT_TRUE(sd.addReservation(0, 0, 2));
    EXPECT_TRUE(sd.addReservation(0, 1, 1));
    EXPECT_TRUE(sd.addReservation(1, 0, 1));
    EXPECT_TRUE(sd.addReservation(1, 2, 1));
    EXPECT_TRUE(sd.addReservation(2, 2, 2));
    EXPECT_TRUE(sd.addReservation(2, 3, 1));
    EXPECT_TRUE(sd.addReservation(3, 1, 1));
    EXPECT_TRUE(sd.addReservation(3, 3, 1));
    expectConsistent(sd);

    // The switch is nearly full; the new flow forces swap chains.
    EXPECT_TRUE(sd.addReservation(1, 3, 1));
    expectConsistent(sd);
    EXPECT_EQ(sd.reservations().reserved(1, 3), 1);

    // Now input 1 and output 3 are saturated.
    EXPECT_FALSE(sd.addReservation(1, 1, 1));
    EXPECT_FALSE(sd.addReservation(0, 3, 1));
}

TEST(SlepianDuguidTest, FullySaturatedSwitchSchedulable)
{
    // 100% reservation: every input and output completely committed
    // (the Slepian-Duguid theorem's boundary case, §4).
    constexpr int kN = 8;
    constexpr int kF = 16;
    SlepianDuguidScheduler sd(kN, kF);
    for (int i = 0; i < kN; ++i)
        for (int j = 0; j < kN; ++j)
            EXPECT_TRUE(sd.addReservation(i, (i + j) % kN, kF / kN));
    expectConsistent(sd);
    EXPECT_EQ(sd.schedule().totalAssignments(), kN * kF);
}

TEST(SlepianDuguidTest, RemoveFreesSlots)
{
    SlepianDuguidScheduler sd(4, 4);
    EXPECT_TRUE(sd.addReservation(0, 1, 3));
    sd.removeReservation(0, 1, 2);
    EXPECT_EQ(sd.reservations().reserved(0, 1), 1);
    expectConsistent(sd);
    EXPECT_TRUE(sd.addReservation(0, 2, 3));
    expectConsistent(sd);
}

TEST(SlepianDuguidTest, RemoveTooMuchRejected)
{
    SlepianDuguidScheduler sd(4, 4);
    sd.addReservation(0, 1, 2);
    EXPECT_THROW(sd.removeReservation(0, 1, 3), UsageError);
}

TEST(SlepianDuguidTest, InterleavedAddRemoveStaysConsistent)
{
    SlepianDuguidScheduler sd(6, 12);
    Xoshiro256 rng(31);
    for (int step = 0; step < 400; ++step) {
        auto i = static_cast<PortId>(rng.nextBelow(6));
        auto j = static_cast<PortId>(rng.nextBelow(6));
        if (rng.nextBernoulli(0.6)) {
            int k = static_cast<int>(rng.nextBelow(3)) + 1;
            sd.addReservation(i, j, k);  // may legitimately fail
        } else {
            int have = sd.reservations().reserved(i, j);
            if (have > 0)
                sd.removeReservation(i, j, 1);
        }
    }
    expectConsistent(sd);
}

// Property sweep: random feasible reservation matrices must always yield
// a realizing schedule, across sizes, frame lengths, and fill levels.
using SdParam = std::tuple<int, int, double, uint64_t>;

class SlepianDuguidSweep : public ::testing::TestWithParam<SdParam>
{
};

TEST_P(SlepianDuguidSweep, RandomFeasibleMatricesAlwaysSchedulable)
{
    auto [n, frame, fill, seed] = GetParam();
    Xoshiro256 rng(seed);
    for (int trial = 0; trial < 10; ++trial) {
        SlepianDuguidScheduler sd(n, frame);
        // Add random reservations until the target fill is reached or
        // requests start failing.
        int target = static_cast<int>(fill * n * frame);
        int added = 0;
        int attempts = 0;
        while (added < target && attempts < 20 * target) {
            ++attempts;
            auto i = static_cast<PortId>(rng.nextBelow(
                static_cast<uint64_t>(n)));
            auto j = static_cast<PortId>(rng.nextBelow(
                static_cast<uint64_t>(n)));
            int k = static_cast<int>(rng.nextBelow(4)) + 1;
            if (sd.reservations().canAdd(i, j, k)) {
                ASSERT_TRUE(sd.addReservation(i, j, k));
                added += k;
            }
        }
        EXPECT_TRUE(sd.schedule().realizes(sd.reservations()))
            << "n=" << n << " frame=" << frame << " fill=" << fill;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SlepianDuguidSweep,
    ::testing::Combine(::testing::Values(2, 4, 8, 16),
                       ::testing::Values(3, 16, 50),
                       ::testing::Values(0.5, 0.9, 1.0),
                       ::testing::Values(7ULL, 1234ULL)));

TEST(SlepianDuguidTest, SpreadPlacementStillRealizesReservations)
{
    SlepianDuguidScheduler sd(8, 32, SlotPlacement::Spread);
    Xoshiro256 rng(77);
    for (int step = 0; step < 200; ++step) {
        auto i = static_cast<PortId>(rng.nextBelow(8));
        auto j = static_cast<PortId>(rng.nextBelow(8));
        int k = static_cast<int>(rng.nextBelow(4)) + 1;
        sd.addReservation(i, j, k);  // may fail when full; fine
    }
    expectConsistent(sd);
}

TEST(SlepianDuguidTest, SpreadPlacementReducesJitter)
{
    // 4 cells/frame in a 64-slot frame: ideal gap is 16 slots. FirstFit
    // packs them at the front (gap 61); Spread lands near the ideal.
    SlepianDuguidScheduler first_fit(4, 64, SlotPlacement::FirstFit);
    SlepianDuguidScheduler spread(4, 64, SlotPlacement::Spread);
    ASSERT_TRUE(first_fit.addReservation(0, 1, 4));
    ASSERT_TRUE(spread.addReservation(0, 1, 4));
    EXPECT_GE(first_fit.maxGap(0, 1), 60);
    EXPECT_LE(spread.maxGap(0, 1), 20);
}

TEST(SlepianDuguidTest, MaxGapOnEmptyPairIsFrame)
{
    SlepianDuguidScheduler sd(4, 10);
    EXPECT_EQ(sd.maxGap(0, 0), 10);
    sd.addReservation(0, 0, 1);
    EXPECT_EQ(sd.maxGap(0, 0), 10);  // single cell: full cycle back
}

TEST(SlepianDuguidTest, SwapCountStaysPolynomial)
{
    // The paper cites O(k*N) steps per reservation; verify the swap
    // counter stays far below quadratic blowup for a full 16x16 load.
    constexpr int kN = 16;
    constexpr int kF = 32;
    SlepianDuguidScheduler sd(kN, kF);
    for (int i = 0; i < kN; ++i)
        for (int j = 0; j < kN; ++j)
            ASSERT_TRUE(sd.addReservation(i, (i + j) % kN, kF / kN));
    // kN*kF = 512 placements, each bounded by a 2N-step chain.
    EXPECT_LE(sd.totalSwaps(), 512 * 2 * kN);
}

}  // namespace
}  // namespace an2
