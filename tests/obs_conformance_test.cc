// Backend conformance for the obs probe layer: the Reference and
// WordParallel matcher cores must report byte-identical per-iteration
// counters and MatchIter event sequences on seeded runs. (The matchings
// themselves are already pinned identical by matcher_conformance_test
// and pim_fast_test; this suite pins the *instrumentation*.)
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "an2/base/rng.h"
#include "an2/matching/islip.h"
#include "an2/matching/matcher.h"
#include "an2/matching/pim.h"
#include "an2/matching/request_matrix.h"
#include "an2/matching/serial_greedy.h"
#include "an2/obs/recorder.h"

// With the obs layer compiled out there is nothing to observe.
#ifdef AN2_OBS_DISABLED
#define SKIP_IF_OBS_DISABLED() \
    GTEST_SKIP() << "obs layer compiled out (AN2_OBS_DISABLED)"
#else
#define SKIP_IF_OBS_DISABLED() (void)0
#endif

namespace an2::obs {
namespace {

using MatcherFactory =
    std::function<std::unique_ptr<Matcher>(MatcherBackend)>;

struct NamedFactory
{
    std::string label;
    MatcherFactory make;
};

std::vector<NamedFactory>
factories()
{
    std::vector<NamedFactory> fs;
    fs.push_back({"pim_random", [](MatcherBackend b) {
                      PimConfig cfg;
                      cfg.iterations = 4;
                      cfg.seed = 21;
                      cfg.backend = b;
                      return std::make_unique<PimMatcher>(cfg);
                  }});
    fs.push_back({"pim_complete_rr", [](MatcherBackend b) {
                      PimConfig cfg;
                      cfg.iterations = 0;
                      cfg.accept = AcceptPolicy::RoundRobin;
                      cfg.seed = 22;
                      cfg.backend = b;
                      return std::make_unique<PimMatcher>(cfg);
                  }});
    fs.push_back({"islip", [](MatcherBackend b) {
                      return std::make_unique<IslipMatcher>(4, b);
                  }});
    fs.push_back({"greedy_random", [](MatcherBackend b) {
                      return std::make_unique<SerialGreedyMatcher>(true, 23,
                                                                   b);
                  }});
    fs.push_back({"greedy_fixed", [](MatcherBackend b) {
                      return std::make_unique<SerialGreedyMatcher>(false, 0,
                                                                   b);
                  }});
    return fs;
}

struct ObservedRun
{
    std::vector<Event> events;
    std::vector<int64_t> counters;
};

/** Run `make(backend)` over a seeded request-matrix sweep with a fresh
    recorder attached; return everything it observed. */
ObservedRun
observe(const MatcherFactory& make, MatcherBackend backend, int n)
{
    Recorder rec(RecorderConfig{.trace_capacity = 1u << 16});
    attach(&rec);
    auto matcher = make(backend);
    Matching out(n, n);
    Xoshiro256 rng(static_cast<uint64_t>(1000 + n));
    for (double p : {0.05, 0.3, 0.7, 1.0}) {
        for (int t = 0; t < 8; ++t) {
            auto req = RequestMatrix::bernoulli(n, p, rng);
            matcher->matchInto(req, out);
        }
    }
    detach();

    ObservedRun run;
    for (size_t k = 0; k < rec.eventCount(); ++k)
        run.events.push_back(rec.event(k));
    for (int c = 0; c < static_cast<int>(Counter::kCount); ++c)
        run.counters.push_back(rec.counter(static_cast<Counter>(c)));
    return run;
}

void
expectIdenticalObservations(const ObservedRun& ref, const ObservedRun& fast)
{
    for (int c = 0; c < static_cast<int>(Counter::kCount); ++c)
        EXPECT_EQ(ref.counters[static_cast<size_t>(c)],
                  fast.counters[static_cast<size_t>(c)])
            << "counter " << counterName(static_cast<Counter>(c));
    ASSERT_EQ(ref.events.size(), fast.events.size());
    for (size_t k = 0; k < ref.events.size(); ++k) {
        const Event& a = ref.events[k];
        const Event& b = fast.events[k];
        EXPECT_EQ(a.slot, b.slot) << "event " << k;
        EXPECT_EQ(a.type, b.type) << "event " << k;
        EXPECT_EQ(a.alg, b.alg) << "event " << k;
        EXPECT_EQ(a.iter, b.iter) << "event " << k;
        EXPECT_EQ(a.a, b.a) << "event " << k << " (requests)";
        EXPECT_EQ(a.b, b.b) << "event " << k << " (grants)";
        EXPECT_EQ(a.c, b.c) << "event " << k << " (accepts)";
        EXPECT_EQ(a.d, b.d) << "event " << k << " (matched)";
    }
}

class ObsBackendConformanceTest
    : public ::testing::TestWithParam<::testing::tuple<int, int>>
{
};

TEST_P(ObsBackendConformanceTest, ReferenceAndWordParallelCountersMatch)
{
    SKIP_IF_OBS_DISABLED();
    int fi = ::testing::get<0>(GetParam());
    int n = ::testing::get<1>(GetParam());
    const std::vector<NamedFactory> fs = factories();
    const NamedFactory& f = fs[static_cast<size_t>(fi)];
    ObservedRun ref = observe(f.make, MatcherBackend::Reference, n);
    ObservedRun fast = observe(f.make, MatcherBackend::WordParallel, n);
    ASSERT_GT(ref.events.size(), 0u) << f.label;
    expectIdenticalObservations(ref, fast);
}

INSTANTIATE_TEST_SUITE_P(
    AllMatchers, ObsBackendConformanceTest,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(4, 16, 80)));

}  // namespace
}  // namespace an2::obs
