// Tests for the Table 2 cost model (an2/fabric/cost_model.h).
#include "an2/fabric/cost_model.h"

#include <gtest/gtest.h>

#include "an2/base/error.h"

namespace an2 {
namespace {

TEST(CostModelTest, PrototypeReproducesTable2At16)
{
    CostModel model(CostModel::prototypeParams());
    auto shares = model.shares(16);
    ASSERT_EQ(shares.size(), 5u);
    EXPECT_NEAR(shares[0].share, 0.48, 1e-9);  // optoelectronics
    EXPECT_NEAR(shares[1].share, 0.04, 1e-9);  // crossbar
    EXPECT_NEAR(shares[2].share, 0.21, 1e-9);  // buffer RAM/logic
    EXPECT_NEAR(shares[3].share, 0.10, 1e-9);  // scheduling logic
    EXPECT_NEAR(shares[4].share, 0.17, 1e-9);  // routing/control CPU
}

TEST(CostModelTest, ProductionReproducesTable2At16)
{
    CostModel model(CostModel::productionParams());
    auto shares = model.shares(16);
    EXPECT_NEAR(shares[0].share, 0.63, 1e-9);
    EXPECT_NEAR(shares[1].share, 0.05, 1e-9);
    EXPECT_NEAR(shares[2].share, 0.19, 1e-9);
    EXPECT_NEAR(shares[3].share, 0.03, 1e-9);
    EXPECT_NEAR(shares[4].share, 0.10, 1e-9);
}

TEST(CostModelTest, SharesSumToOneForAnySize)
{
    CostModel model(CostModel::prototypeParams());
    for (int n : {2, 8, 16, 64, 256}) {
        double total = 0.0;
        for (const auto& s : model.shares(n))
            total += s.share;
        EXPECT_NEAR(total, 1.0, 1e-12) << "n=" << n;
    }
}

TEST(CostModelTest, QuadraticUnitsDominateAtScale)
{
    // §2.2's point inverted: for very large N the O(N^2) crossbar and
    // wiring must eventually overtake the per-port optics.
    CostModel model(CostModel::prototypeParams());
    double xbar16 = model.shares(16)[1].share;
    double xbar1024 = model.shares(1024)[1].share;
    EXPECT_GT(xbar1024, xbar16);
    EXPECT_GT(xbar1024, model.shares(1024)[0].share);
}

TEST(CostModelTest, CrossbarSmallAtModerateScale)
{
    // The paper's §2.2 claim: < 5% of cost at the prototype's scale.
    CostModel model(CostModel::prototypeParams());
    EXPECT_LE(model.shares(16)[1].share, 0.05);
}

TEST(CostModelTest, UnitCostsArePositiveAndMonotoneInN)
{
    CostModel model(CostModel::productionParams());
    for (int u = 0; u < kNumCostUnits; ++u) {
        auto unit = static_cast<CostUnit>(u);
        EXPECT_GT(model.unitCost(unit, 4), 0.0);
        if (unit != CostUnit::ControlCpu) {
            EXPECT_GT(model.unitCost(unit, 32), model.unitCost(unit, 16));
        }
    }
}

TEST(CostModelTest, NamesAreDistinct)
{
    EXPECT_EQ(costUnitName(CostUnit::Optoelectronics), "Optoelectronics");
    EXPECT_EQ(costUnitName(CostUnit::ControlCpu), "Routing/Control CPU");
}

TEST(CostModelTest, InvalidSizeRejected)
{
    CostModel model(CostModel::prototypeParams());
    EXPECT_THROW(model.totalCost(0), UsageError);
}

}  // namespace
}  // namespace an2
