// Cross-module integration tests: the paper's qualitative results as
// executable assertions (orderings from Figures 3/8, CBR+VBR coexistence).
#include <gtest/gtest.h>

#include <memory>

#include "an2/base/stats.h"
#include "an2/cbr/slepian_duguid.h"
#include "an2/matching/islip.h"
#include "an2/matching/pim.h"
#include "an2/matching/statistical.h"
#include "an2/sim/fifo_switch.h"
#include "an2/sim/iq_switch.h"
#include "an2/sim/oq_switch.h"
#include "an2/sim/simulator.h"
#include "an2/sim/traffic.h"

namespace an2 {
namespace {

std::unique_ptr<Matcher>
pim(int iterations, uint64_t seed)
{
    PimConfig cfg;
    cfg.iterations = iterations;
    cfg.seed = seed;
    return std::make_unique<PimMatcher>(cfg);
}

SimResult
runUniform(SwitchModel& sw, double load, uint64_t seed,
           SlotTime slots = 30'000)
{
    UniformTraffic traffic(sw.size(), load, seed);
    SimConfig cfg;
    cfg.slots = slots;
    cfg.warmup = slots / 5;
    return runSimulation(sw, traffic, cfg);
}

TEST(IntegrationTest, Figure3OrderingAtHighLoad)
{
    // At 90% uniform load: FIFO has saturated (delay blows up, throughput
    // capped near 0.6); PIM(4) delivers the load with delay between OQ
    // and FIFO.
    constexpr double kLoad = 0.90;
    FifoSwitch fifo(16, 1);
    InputQueuedSwitch pim_sw({.n = 16}, pim(4, 2));
    OutputQueuedSwitch oq(16);

    SimResult r_fifo = runUniform(fifo, kLoad, 77);
    SimResult r_pim = runUniform(pim_sw, kLoad, 77);
    SimResult r_oq = runUniform(oq, kLoad, 77);

    // FIFO saturates below the offered load.
    EXPECT_LT(r_fifo.throughput, 0.70);
    // PIM and OQ carry the full load.
    EXPECT_NEAR(r_pim.throughput, kLoad, 0.02);
    EXPECT_NEAR(r_oq.throughput, kLoad, 0.02);
    // Delay ordering: OQ <= PIM << FIFO.
    EXPECT_LT(r_oq.mean_delay, r_pim.mean_delay);
    EXPECT_LT(r_pim.mean_delay, r_fifo.mean_delay);
}

TEST(IntegrationTest, MoreIterationsNeverHurt)
{
    constexpr double kLoad = 0.85;
    InputQueuedSwitch one({.n = 16}, pim(1, 3));
    InputQueuedSwitch four({.n = 16}, pim(4, 3));
    SimResult r1 = runUniform(one, kLoad, 88);
    SimResult r4 = runUniform(four, kLoad, 88);
    EXPECT_GT(r1.mean_delay, r4.mean_delay);
}

TEST(IntegrationTest, IslipComparableToPimAtFullLoad)
{
    constexpr double kLoad = 0.95;
    InputQueuedSwitch islip_sw({.n = 16}, std::make_unique<IslipMatcher>(4));
    InputQueuedSwitch pim_sw({.n = 16}, pim(4, 4));
    SimResult ri = runUniform(islip_sw, kLoad, 99);
    SimResult rp = runUniform(pim_sw, kLoad, 99);
    EXPECT_NEAR(ri.throughput, kLoad, 0.02);
    EXPECT_NEAR(rp.throughput, kLoad, 0.02);
}

TEST(IntegrationTest, Figure8UnfairnessAndStatisticalFix)
{
    // Figure 8 on a 4x4 switch (0-based ports): inputs 0-2 have queued
    // cells for output 0 *only*; input 3 has queued cells for all four
    // outputs. Output 0 grants input 3 with probability 1/4, and input 3
    // accepts that grant with probability 1/4 (it always holds grants
    // from outputs 1-3, which have no other requester), so connection
    // (3,0) receives ~1/16 of the link while (3,1..3) each get ~5/16 —
    // exactly the paper's numbers.
    constexpr int kN = 4;
    constexpr SlotTime kSlots = 50'000;

    auto runSaturated = [&](std::unique_ptr<Matcher> matcher) {
        InputQueuedSwitch sw({.n = kN}, std::move(matcher));
        // Saturate the figure's VOQs: every connection in the pattern
        // keeps a backlog (the figure shows standing queues).
        auto topUp = [&](PortId i, PortId j, SlotTime slot) {
            Cell c;
            c.flow = static_cast<FlowId>(i * kN + j);
            c.input = i;
            c.output = j;
            c.inject_slot = slot;
            sw.acceptCell(c);
        };
        Matrix<int64_t> served(kN, kN, 0);
        for (SlotTime slot = 0; slot < kSlots; ++slot) {
            for (PortId i = 0; i < 3; ++i)
                topUp(i, 0, slot);
            for (PortId j = 0; j < kN; ++j)
                topUp(3, j, slot);
            for (const Cell& d : sw.runSlot(slot))
                ++served(d.input, d.output);
        }
        return served;
    };

    auto pim_served = runSaturated(pim(4, 5));
    double pim_30 = static_cast<double>(pim_served(3, 0)) / kSlots;
    double pim_31 = static_cast<double>(pim_served(3, 1)) / kSlots;
    EXPECT_NEAR(pim_30, 1.0 / 16, 0.02);
    EXPECT_NEAR(pim_31, 5.0 / 16, 0.03);

    // Statistical matching with fair allocations (a quarter of input 3's
    // link per connection) restores connection (3,0) to ~0.72 * 1/4.
    Matrix<int> alloc(kN, kN, 0);
    constexpr int kUnits = 1000;
    for (PortId j = 0; j < kN; ++j)
        alloc(3, j) = kUnits / 4;
    for (PortId i = 0; i < 3; ++i)
        alloc(i, 0) = kUnits / 4;
    StatisticalConfig scfg;
    scfg.units = kUnits;
    scfg.rounds = 2;
    scfg.seed = 6;
    auto stat_served = runSaturated(
        std::make_unique<StatisticalMatcher>(alloc, scfg));
    double stat_30 = static_cast<double>(stat_served(3, 0)) / kSlots;
    EXPECT_GT(stat_30, 0.25 * 0.70);
    EXPECT_GT(stat_30, pim_30 * 2.0);
}

TEST(IntegrationTest, CbrUnaffectedByVbrFloodEndToEnd)
{
    // Full pipeline: Slepian-Duguid reservations + IQ switch + saturating
    // VBR generator; every reserved slot must deliver a CBR cell while
    // VBR absorbs the rest.
    constexpr int kN = 8;
    constexpr int kFrame = 16;
    SlepianDuguidScheduler sd(kN, kFrame);
    ASSERT_TRUE(sd.addReservation(2, 5, 8));   // half of input 2's link
    ASSERT_TRUE(sd.addReservation(4, 5, 4));   // shares output 5
    InputQueuedSwitch sw({.n = kN}, pim(4, 7), &sd.schedule());

    UniformTraffic vbr(kN, 1.0, 8);
    Xoshiro256 unused(0);
    int64_t cbr_seq = 0;
    int64_t cbr_delivered_25 = 0;
    int64_t cbr_delivered_45 = 0;
    constexpr int kFrames = 250;
    std::vector<Cell> arrivals;
    for (SlotTime slot = 0; slot < kFrames * kFrame; ++slot) {
        // Backlogged CBR sources on both reserved connections.
        Cell a;
        a.flow = 1000;
        a.input = 2;
        a.output = 5;
        a.cls = TrafficClass::CBR;
        a.seq = cbr_seq++;
        a.inject_slot = slot;
        sw.acceptCell(a);
        Cell b = a;
        b.flow = 1001;
        b.input = 4;
        sw.acceptCell(b);
        arrivals.clear();
        vbr.generate(slot, arrivals);
        for (const Cell& c : arrivals)
            sw.acceptCell(c);
        for (const Cell& d : sw.runSlot(slot)) {
            if (d.flow == 1000)
                ++cbr_delivered_25;
            else if (d.flow == 1001)
                ++cbr_delivered_45;
        }
    }
    EXPECT_GE(cbr_delivered_25, (kFrames - 2) * 8);
    EXPECT_GE(cbr_delivered_45, (kFrames - 2) * 4);
    // VBR still moves in the leftover capacity.
    EXPECT_GT(sw.vbrForwarded(), 0);
}

TEST(IntegrationTest, ClientServerWorkloadPimTracksOq)
{
    // Figure 4's qualitative claim: under the client-server workload PIM
    // comes even closer to output queueing than under uniform traffic.
    constexpr double kServerLoad = 0.9;
    InputQueuedSwitch pim_sw({.n = 16}, pim(4, 9));
    OutputQueuedSwitch oq(16);
    ClientServerTraffic t1(16, 4, kServerLoad, 10);
    ClientServerTraffic t2(16, 4, kServerLoad, 10);
    SimConfig cfg;
    cfg.slots = 30'000;
    cfg.warmup = 6'000;
    SimResult rp = runSimulation(pim_sw, t1, cfg);
    SimResult ro = runSimulation(oq, t2, cfg);
    // Same offered traffic, both deliver it all.
    EXPECT_NEAR(rp.throughput, ro.throughput, 0.02);
    // PIM's delay within a small factor of optimal.
    EXPECT_LT(rp.mean_delay, 3.0 * ro.mean_delay + 1.0);
}

}  // namespace
}  // namespace an2
