// Differential tests for the bitmask PIM (an2/matching/pim_fast.h)
// against the reference implementation: identical guarantees,
// statistically identical behaviour.
#include "an2/matching/pim_fast.h"

#include <gtest/gtest.h>

#include <cmath>

#include "an2/matching/pim.h"

namespace an2 {
namespace {

TEST(FastPimTest, EmptyAndSingleRequest)
{
    FastPimMatcher pim(4, 1);
    RequestMatrix empty(16);
    EXPECT_EQ(pim.match(empty).size(), 0);
    RequestMatrix one(16);
    one.set(5, 9, 1);
    Matching m = pim.match(one);
    EXPECT_EQ(m.size(), 1);
    EXPECT_EQ(m.outputOf(5), 9);
}

TEST(FastPimTest, LegalAndMaximalToCompletion)
{
    FastPimMatcher pim(0, 2);
    Xoshiro256 rng(3);
    for (int n : {1, 2, 7, 16, 33, 64}) {
        for (int t = 0; t < 30; ++t) {
            auto req = RequestMatrix::bernoulli(n, 0.4, rng);
            Matching m = pim.match(req);
            EXPECT_TRUE(m.isLegalFor(req));
            EXPECT_TRUE(m.isMaximalFor(req)) << "n=" << n;
        }
    }
}

TEST(FastPimTest, SixtyFourPortBoundary)
{
    // Full 64x64 request matrix exercises the all-ones mask path.
    FastPimMatcher pim(0, 4);
    RequestMatrix req(64);
    for (PortId i = 0; i < 64; ++i)
        for (PortId j = 0; j < 64; ++j)
            req.set(i, j, 1);
    Matching m = pim.match(req);
    EXPECT_EQ(m.size(), 64);
}

TEST(FastPimTest, MatchSizeDistributionTracksReference)
{
    // Same workloads, same iteration budget: mean matched pairs must
    // agree with the reference PIM within sampling noise.
    constexpr int kTrials = 4000;
    for (double p : {0.15, 0.5, 1.0}) {
        PimMatcher ref(PimConfig{.iterations = 4, .seed = 5});
        FastPimMatcher fast(4, 6);
        Xoshiro256 rng_a(7);
        Xoshiro256 rng_b(7);  // identical request streams
        double ref_total = 0;
        double fast_total = 0;
        for (int t = 0; t < kTrials; ++t) {
            auto req_a = RequestMatrix::bernoulli(16, p, rng_a);
            auto req_b = RequestMatrix::bernoulli(16, p, rng_b);
            ref_total += ref.match(req_a).size();
            fast_total += fast.match(req_b).size();
        }
        EXPECT_NEAR(fast_total / kTrials, ref_total / kTrials, 0.1)
            << "p=" << p;
    }
}

TEST(FastPimTest, GrantFairnessUniform)
{
    // One output, four requesters: each must win ~1/4 of slots.
    FastPimMatcher pim(1, 8);
    RequestMatrix req(4);
    for (PortId i = 0; i < 4; ++i)
        req.set(i, 0, 1);
    std::vector<int> wins(4, 0);
    constexpr int kSlots = 40'000;
    for (int s = 0; s < kSlots; ++s) {
        Matching m = pim.match(req);
        ASSERT_EQ(m.size(), 1);
        ++wins[static_cast<size_t>(m.inputOf(0))];
    }
    for (int w : wins)
        EXPECT_NEAR(w / static_cast<double>(kSlots), 0.25, 0.01);
}

TEST(FastPimTest, AcceptFairnessUniform)
{
    // One input granted by four outputs: each accepted ~1/4 of slots.
    FastPimMatcher pim(1, 9);
    RequestMatrix req(4);
    for (PortId j = 0; j < 4; ++j)
        req.set(0, j, 1);
    std::vector<int> wins(4, 0);
    constexpr int kSlots = 40'000;
    for (int s = 0; s < kSlots; ++s) {
        Matching m = pim.match(req);
        ASSERT_EQ(m.size(), 1);
        ++wins[static_cast<size_t>(m.outputOf(0))];
    }
    for (int w : wins)
        EXPECT_NEAR(w / static_cast<double>(kSlots), 0.25, 0.01);
}

TEST(FastPimTest, MaskInterfaceAgreesWithMatrixInterface)
{
    FastPimMatcher a(0, 10);
    FastPimMatcher b(0, 10);  // same seed: identical draw sequence
    Xoshiro256 rng(11);
    for (int t = 0; t < 50; ++t) {
        auto req = RequestMatrix::bernoulli(12, 0.5, rng);
        uint64_t cols[64] = {};
        for (PortId j = 0; j < 12; ++j)
            for (PortId i = 0; i < 12; ++i)
                if (req.has(i, j))
                    cols[j] |= 1ULL << i;
        Matching via_matrix = a.match(req);
        int out_to_in[64];
        b.matchMasks(cols, 12, out_to_in);
        for (PortId j = 0; j < 12; ++j) {
            PortId expect = via_matrix.inputOf(j);
            EXPECT_EQ(out_to_in[j], expect == kNoPort ? -1 : expect);
        }
    }
}

TEST(FastPimTest, MultiWordSizesLegalAndMaximal)
{
    // Sizes past the single-word boundary run on the multi-word core.
    FastPimMatcher pim(0, 12);
    Xoshiro256 rng(13);
    for (int n : {65, 100, 128, 256}) {
        for (int t = 0; t < 5; ++t) {
            auto req = RequestMatrix::bernoulli(n, 0.1, rng);
            Matching m = pim.match(req);
            EXPECT_TRUE(m.isLegalFor(req));
            EXPECT_TRUE(m.isMaximalFor(req)) << "n=" << n;
        }
    }
}

TEST(FastPimTest, RejectsOversizedAndRectangular)
{
    FastPimMatcher pim;
    RequestMatrix big(1025);
    EXPECT_THROW(pim.match(big), UsageError);
    RequestMatrix rect(4, 8);
    EXPECT_THROW(pim.match(rect), UsageError);
    EXPECT_THROW(FastPimMatcher(-1), UsageError);
    int out_to_in[64];
    uint64_t cols[64] = {};
    EXPECT_THROW(pim.matchMasks(cols, 65, out_to_in), UsageError);
}

}  // namespace
}  // namespace an2
