// Tests for subdivided frames (an2/cbr/subframes.h) — the §4 future-work
// latency/granularity trade-off.
#include "an2/cbr/subframes.h"

#include <gtest/gtest.h>

#include <memory>

#include "an2/matching/pim.h"
#include "an2/sim/iq_switch.h"

namespace an2 {
namespace {

TEST(SubframeTest, ConstructionValidatesDivisibility)
{
    EXPECT_NO_THROW(SubframeScheduler(4, 100, 4));
    EXPECT_THROW(SubframeScheduler(4, 100, 3), UsageError);
    EXPECT_THROW(SubframeScheduler(4, 100, 0), UsageError);
}

TEST(SubframeTest, FrameReservationPlacedAcrossSubframes)
{
    SubframeScheduler ss(4, 40, 4);
    EXPECT_TRUE(ss.addFrameReservation(0, 1, 10));
    EXPECT_EQ(ss.reservedPerFrame(0, 1), 10);
    EXPECT_EQ(ss.schedule().slotsFor(0, 1), 10);
}

TEST(SubframeTest, SubframeReservationInEverySubframe)
{
    SubframeScheduler ss(4, 40, 4);
    EXPECT_TRUE(ss.addSubframeReservation(0, 1, 2));
    EXPECT_EQ(ss.reservedPerFrame(0, 1), 8);  // 2 per subframe * 4
    // Each 10-slot subframe carries exactly 2 cells of the pair.
    for (int s = 0; s < 4; ++s) {
        int in_sub = 0;
        for (int slot = s * 10; slot < (s + 1) * 10; ++slot)
            if (ss.schedule().outputAt(slot, 0) == 1)
                ++in_sub;
        EXPECT_EQ(in_sub, 2) << "subframe " << s;
    }
}

TEST(SubframeTest, SubframeClassTightensWorstGap)
{
    // Same bandwidth (8 cells / 40-slot frame), two classes: frame class
    // may bunch cells; subframe class guarantees service every 10 slots.
    SubframeScheduler frame_class(4, 40, 4, SlotPlacement::FirstFit);
    ASSERT_TRUE(frame_class.addFrameReservation(0, 1, 8));
    SubframeScheduler sub_class(4, 40, 4, SlotPlacement::FirstFit);
    ASSERT_TRUE(sub_class.addSubframeReservation(0, 1, 2));
    EXPECT_LE(sub_class.maxGap(0, 1), 2 * 10);
    EXPECT_GE(frame_class.maxGap(0, 1), sub_class.maxGap(0, 1));
}

TEST(SubframeTest, GranularityIsCoarserForSubframeClass)
{
    // Subframe class can only allocate multiples of m cells/frame; the
    // smallest non-zero reservation is m cells.
    SubframeScheduler ss(4, 40, 4);
    EXPECT_TRUE(ss.addSubframeReservation(0, 1, 1));
    EXPECT_EQ(ss.reservedPerFrame(0, 1), 4);  // granule of 4 cells/frame
    // Frame class can still add single cells.
    EXPECT_TRUE(ss.addFrameReservation(2, 3, 1));
    EXPECT_EQ(ss.reservedPerFrame(2, 3), 1);
}

TEST(SubframeTest, RejectsWhenSubframeFull)
{
    SubframeScheduler ss(2, 8, 4);  // 2-slot subframes
    EXPECT_TRUE(ss.addSubframeReservation(0, 0, 2));  // input 0 full
    EXPECT_FALSE(ss.addSubframeReservation(0, 1, 1));
    EXPECT_FALSE(ss.addFrameReservation(0, 1, 1));
    EXPECT_TRUE(ss.addFrameReservation(1, 1, 8));
}

TEST(SubframeTest, FrameReservationRejectionLeavesNoResidue)
{
    SubframeScheduler ss(2, 8, 2);
    ASSERT_TRUE(ss.addFrameReservation(0, 0, 6));
    // Only 2 cells of capacity remain for (0,1): min slack per subframe.
    EXPECT_FALSE(ss.addFrameReservation(0, 1, 3));
    EXPECT_EQ(ss.reservedPerFrame(0, 1), 0);
    EXPECT_TRUE(ss.addFrameReservation(0, 1, 2));
}

TEST(SubframeTest, MixedClassesShareTheFrame)
{
    SubframeScheduler ss(4, 64, 4);
    EXPECT_TRUE(ss.addSubframeReservation(0, 1, 3));  // 12/frame, low lat.
    EXPECT_TRUE(ss.addFrameReservation(0, 2, 20));
    EXPECT_TRUE(ss.addFrameReservation(1, 1, 30));
    EXPECT_EQ(ss.schedule().totalAssignments(), 12 + 20 + 30);
    // Conflict-freedom is enforced structurally by FrameSchedule::assign.
}

TEST(SubframeTest, CombinedScheduleDrivesSwitchWithTightService)
{
    // End to end: a subframe-class flow through the IQ switch is served
    // within every subframe even under saturating datagram load.
    constexpr int kFrame = 32;
    constexpr int kSub = 4;
    SubframeScheduler ss(4, kFrame, kSub);
    ASSERT_TRUE(ss.addSubframeReservation(1, 2, 1));
    InputQueuedSwitch sw({.n = 4},
                         std::make_unique<PimMatcher>(
                             PimConfig{.iterations = 4, .seed = 4}),
                         &ss.schedule());
    Xoshiro256 rng(5);
    SlotTime last_service = -1;
    SlotTime worst_gap = 0;
    int64_t seq = 0;
    for (SlotTime slot = 0; slot < 200 * kFrame; ++slot) {
        Cell c;
        c.flow = 7;
        c.input = 1;
        c.output = 2;
        c.cls = TrafficClass::CBR;
        c.seq = seq++;
        c.inject_slot = slot;
        sw.acceptCell(c);
        for (PortId i = 0; i < 4; ++i) {
            auto j = static_cast<PortId>(rng.nextBelow(4));
            Cell v;
            v.flow = 100 + i * 4 + j;
            v.input = i;
            v.output = j;
            v.inject_slot = slot;
            sw.acceptCell(v);
        }
        for (const Cell& d : sw.runSlot(slot)) {
            if (d.flow != 7)
                continue;
            if (last_service >= 0)
                worst_gap = std::max(worst_gap, slot - last_service);
            last_service = slot;
        }
    }
    // One cell per 8-slot subframe: never more than 2 subframes apart.
    EXPECT_LE(worst_gap, 2 * (kFrame / kSub));
}

}  // namespace
}  // namespace an2
