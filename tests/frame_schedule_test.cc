// Tests for the frame schedule (an2/cbr/frame_schedule.h), including the
// paper's Figure 6 worked example.
#include "an2/cbr/frame_schedule.h"

#include <gtest/gtest.h>

namespace an2 {
namespace {

TEST(FrameScheduleTest, StartsEmpty)
{
    FrameSchedule s(4, 3);
    EXPECT_EQ(s.totalAssignments(), 0);
    for (int slot = 0; slot < 3; ++slot)
        for (PortId p = 0; p < 4; ++p) {
            EXPECT_TRUE(s.inputFree(slot, p));
            EXPECT_TRUE(s.outputFree(slot, p));
        }
}

TEST(FrameScheduleTest, AssignAndQuery)
{
    FrameSchedule s(4, 3);
    s.assign(1, 2, 3);
    EXPECT_EQ(s.outputAt(1, 2), 3);
    EXPECT_EQ(s.inputAt(1, 3), 2);
    EXPECT_FALSE(s.inputFree(1, 2));
    EXPECT_FALSE(s.outputFree(1, 3));
    EXPECT_TRUE(s.inputFree(0, 2));
    EXPECT_EQ(s.totalAssignments(), 1);
    EXPECT_EQ(s.slotsFor(2, 3), 1);
}

TEST(FrameScheduleTest, ConflictingAssignPanics)
{
    FrameSchedule s(4, 2);
    s.assign(0, 1, 1);
    EXPECT_THROW(s.assign(0, 1, 2), InternalError);  // input busy
    EXPECT_THROW(s.assign(0, 2, 1), InternalError);  // output busy
    EXPECT_NO_THROW(s.assign(1, 1, 1));  // other slot fine
}

TEST(FrameScheduleTest, ClearFreesPorts)
{
    FrameSchedule s(4, 2);
    s.assign(0, 1, 1);
    s.clear(0, 1, 1);
    EXPECT_TRUE(s.inputFree(0, 1));
    EXPECT_EQ(s.totalAssignments(), 0);
    EXPECT_THROW(s.clear(0, 1, 1), InternalError);
}

TEST(FrameScheduleTest, RealizesChecksExactCounts)
{
    // The Figure 6 example: 4x4 switch, frame of 3 slots.
    // Reservations (cells/frame):     rows = inputs 1..4 (0-based 0..3)
    //   in0: 2 to out0, 1 to out1
    //   in1: 1 to out0, 1 to out2
    //   in2: 2 to out2, 1 to out3
    //   in3: 1 to out1, 1 to out3
    ReservationMatrix res(4, 3);
    res.add(0, 0, 2);
    res.add(0, 1, 1);
    res.add(1, 0, 1);
    res.add(1, 2, 1);
    res.add(2, 2, 2);
    res.add(2, 3, 1);
    res.add(3, 1, 1);
    res.add(3, 3, 1);

    // One valid schedule (a Figure 6-style assignment):
    FrameSchedule s(4, 3);
    s.assign(0, 0, 0);
    s.assign(0, 1, 2);
    s.assign(0, 2, 3);
    s.assign(0, 3, 1);
    s.assign(1, 0, 0);
    s.assign(1, 2, 2);
    s.assign(1, 3, 3);
    s.assign(2, 0, 1);
    s.assign(2, 1, 0);
    s.assign(2, 2, 2);
    EXPECT_TRUE(s.realizes(res));

    // Removing one assignment breaks realization.
    s.clear(2, 2, 2);
    EXPECT_FALSE(s.realizes(res));
}

TEST(FrameScheduleTest, RealizesRejectsWrongShape)
{
    FrameSchedule s(4, 3);
    ReservationMatrix other_frame(4, 5);
    EXPECT_FALSE(s.realizes(other_frame));
    ReservationMatrix other_size(5, 3);
    EXPECT_FALSE(s.realizes(other_size));
}

TEST(FrameScheduleTest, ResetClearsEverything)
{
    FrameSchedule s(4, 3);
    s.assign(0, 0, 1);
    s.assign(1, 2, 3);
    s.assign(2, 1, 0);
    s.reset();
    EXPECT_EQ(s.totalAssignments(), 0);
    for (int slot = 0; slot < 3; ++slot)
        for (PortId p = 0; p < 4; ++p) {
            EXPECT_TRUE(s.inputFree(slot, p));
            EXPECT_TRUE(s.outputFree(slot, p));
        }
    // Fully reusable after reset.
    s.assign(0, 0, 1);
    EXPECT_EQ(s.totalAssignments(), 1);
}

TEST(FrameScheduleTest, BoundsChecked)
{
    FrameSchedule s(2, 2);
    EXPECT_THROW(s.outputAt(2, 0), UsageError);
    EXPECT_THROW(s.outputAt(0, 2), UsageError);
    EXPECT_THROW(s.assign(0, -1, 0), UsageError);
}

}  // namespace
}  // namespace an2
