// Tests for the an2.trace.v1 Chrome trace exporter: a byte-exact golden
// document for a seeded 4x4 PIM run, structural invariants of the JSON,
// and the enqueue/dequeue pairing property (every dequeue is preceded by
// the enqueue of the same cell).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "an2/matching/pim.h"
#include "an2/obs/recorder.h"
#include "an2/obs/trace_export.h"
#include "an2/sim/iq_switch.h"
#include "an2/sim/traffic.h"

#ifndef AN2_TEST_GOLDEN_DIR
#define AN2_TEST_GOLDEN_DIR "tests/golden"
#endif

// With the obs layer compiled out the trace is empty.
#ifdef AN2_OBS_DISABLED
#define SKIP_IF_OBS_DISABLED() \
    GTEST_SKIP() << "obs layer compiled out (AN2_OBS_DISABLED)"
#else
#define SKIP_IF_OBS_DISABLED() (void)0
#endif

namespace an2::obs {
namespace {

/** Drive a seeded switch with a recorder attached for `slots` slots. */
void
runTraced(Recorder& rec, int n, double load, uint64_t traffic_seed,
          uint64_t pim_seed, int slots)
{
    attach(&rec);
    InputQueuedSwitch sw(
        IqSwitchConfig{.n = n},
        std::make_unique<PimMatcher>(
            PimConfig{.iterations = 4, .seed = pim_seed}));
    UniformTraffic traffic(n, load, traffic_seed);
    std::vector<Cell> arrivals;
    for (SlotTime slot = 0; slot < slots; ++slot) {
        arrivals.clear();
        traffic.generate(slot, arrivals);
        for (const Cell& c : arrivals)
            sw.acceptCell(c);
        sw.runSlot(slot);
    }
    detach();
}

TEST(TraceExportTest, GoldenFourByFourPimRun)
{
    SKIP_IF_OBS_DISABLED();
    Recorder rec(RecorderConfig{.trace_capacity = 4096, .ports = 4});
    runTraced(rec, 4, 0.6, 7, 3, 12);
    std::string doc = toChromeTraceJson(rec);

    const std::string path =
        std::string(AN2_TEST_GOLDEN_DIR) + "/trace_4x4_pim.json";
    if (std::getenv("AN2_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << doc;
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden " << path
        << " (run with AN2_REGEN_GOLDEN=1 to create it)";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(doc, golden.str())
        << "an2.trace.v1 output changed; if intentional, regenerate with "
           "AN2_REGEN_GOLDEN=1";
}

TEST(TraceExportTest, DocumentStructure)
{
    SKIP_IF_OBS_DISABLED();
    Recorder rec(RecorderConfig{.trace_capacity = 4096, .ports = 4});
    runTraced(rec, 4, 0.6, 7, 3, 12);
    std::string doc = toChromeTraceJson(rec);

    // One physical line (compact mode) carrying the schema banner and
    // every counter by name.
    EXPECT_EQ(doc.find("{\"schema\":\"an2.trace.v1\""), 0u);
    EXPECT_EQ(doc.find('\n'), doc.size() - 1);
    for (int c = 0; c < static_cast<int>(Counter::kCount); ++c) {
        std::string key =
            std::string("\"") + counterName(static_cast<Counter>(c)) +
            "\":";
        EXPECT_NE(doc.find(key), std::string::npos) << key;
    }
    EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"slot\",\"ph\":\"B\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"pim.iter\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"enqueue\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"dequeue\""), std::string::npos);
}

TEST(TraceExportTest, DeterministicAcrossRuns)
{
    Recorder a(RecorderConfig{.trace_capacity = 4096, .ports = 4});
    runTraced(a, 4, 0.6, 7, 3, 12);
    Recorder b(RecorderConfig{.trace_capacity = 4096, .ports = 4});
    runTraced(b, 4, 0.6, 7, 3, 12);
    EXPECT_EQ(toChromeTraceJson(a), toChromeTraceJson(b));
}

TEST(TraceEventsTest, EveryDequeuePairsWithPriorEnqueue)
{
    SKIP_IF_OBS_DISABLED();
    // Capacity large enough that nothing is dropped: the property only
    // holds over the complete event stream.
    Recorder rec(RecorderConfig{.trace_capacity = 1u << 18, .ports = 16});
    runTraced(rec, 16, 0.85, 101, 5, 400);
    ASSERT_EQ(rec.droppedEvents(), 0);

    // Cell identity is (flow, seq): flows are unique per (input, output)
    // pair under UniformTraffic and seq increments per flow.
    std::set<std::pair<int32_t, int32_t>> buffered;
    int64_t enq = 0;
    int64_t deq = 0;
    for (size_t k = 0; k < rec.eventCount(); ++k) {
        const Event& e = rec.event(k);
        if (e.type == EventType::Enqueue) {
            ++enq;
            auto inserted = buffered.insert({e.c, e.d}).second;
            EXPECT_TRUE(inserted)
                << "duplicate enqueue of flow " << e.c << " seq " << e.d;
        } else if (e.type == EventType::Dequeue) {
            ++deq;
            auto erased = buffered.erase({e.c, e.d});
            EXPECT_EQ(erased, 1u)
                << "dequeue without prior enqueue: flow " << e.c
                << " seq " << e.d;
        }
    }
    EXPECT_GT(deq, 0);
    EXPECT_EQ(enq, rec.counter(Counter::CellsEnqueued));
    EXPECT_EQ(deq, rec.counter(Counter::CellsDequeued));
    EXPECT_EQ(enq - deq, static_cast<int64_t>(buffered.size()));
}

}  // namespace
}  // namespace an2::obs
