// Tests for the request matrix (an2/matching/request_matrix.h).
#include "an2/matching/request_matrix.h"

#include <gtest/gtest.h>

namespace an2 {
namespace {

TEST(RequestMatrixTest, StartsEmpty)
{
    RequestMatrix req(4);
    EXPECT_EQ(req.numEdges(), 0);
    EXPECT_EQ(req.totalCells(), 0);
    EXPECT_FALSE(req.has(0, 0));
}

TEST(RequestMatrixTest, SetIncrementDecrement)
{
    RequestMatrix req(4);
    req.set(1, 2, 3);
    EXPECT_TRUE(req.has(1, 2));
    EXPECT_EQ(req.count(1, 2), 3);
    req.increment(1, 2);
    EXPECT_EQ(req.count(1, 2), 4);
    req.decrement(1, 2);
    EXPECT_EQ(req.count(1, 2), 3);
    EXPECT_EQ(req.numEdges(), 1);
    EXPECT_EQ(req.totalCells(), 3);
}

TEST(RequestMatrixTest, DecrementEmptyPanics)
{
    RequestMatrix req(2);
    EXPECT_THROW(req.decrement(0, 0), InternalError);
}

TEST(RequestMatrixTest, NegativeCountRejected)
{
    RequestMatrix req(2);
    EXPECT_THROW(req.set(0, 0, -1), UsageError);
}

TEST(RequestMatrixTest, ClearEmpties)
{
    RequestMatrix req(3);
    req.set(0, 0, 2);
    req.set(2, 1, 1);
    req.clear();
    EXPECT_EQ(req.totalCells(), 0);
    EXPECT_EQ(req.numEdges(), 0);
}

TEST(RequestMatrixTest, RectangularDimensions)
{
    RequestMatrix req(2, 5);
    EXPECT_EQ(req.numInputs(), 2);
    EXPECT_EQ(req.numOutputs(), 5);
    req.set(1, 4, 1);
    EXPECT_TRUE(req.has(1, 4));
}

TEST(RequestMatrixTest, BernoulliDensityMatchesP)
{
    Xoshiro256 rng(1);
    int edges = 0;
    constexpr int kTrials = 200;
    constexpr int kN = 16;
    for (int t = 0; t < kTrials; ++t) {
        auto req = RequestMatrix::bernoulli(kN, 0.25, rng);
        edges += req.numEdges();
    }
    double density =
        static_cast<double>(edges) / (kTrials * kN * kN);
    EXPECT_NEAR(density, 0.25, 0.01);
}

TEST(RequestMatrixTest, BernoulliExtremes)
{
    Xoshiro256 rng(2);
    EXPECT_EQ(RequestMatrix::bernoulli(8, 0.0, rng).numEdges(), 0);
    EXPECT_EQ(RequestMatrix::bernoulli(8, 1.0, rng).numEdges(), 64);
}

TEST(RequestMatrixTest, MasksTrackMutationsIncrementally)
{
    RequestMatrix req(70);  // two words per row and column
    EXPECT_EQ(req.rowWords(), 2);
    EXPECT_EQ(req.colWords(), 2);
    EXPECT_EQ(req.numEdges(), 0);

    req.set(3, 68, 2);
    EXPECT_TRUE(wordset::testBit(req.rowMask(3), 68));
    EXPECT_TRUE(wordset::testBit(req.colMask(68), 3));
    EXPECT_EQ(req.numEdges(), 1);

    // Count changes that stay positive do not change the masks or edges.
    req.increment(3, 68);
    EXPECT_EQ(req.count(3, 68), 3);
    EXPECT_EQ(req.numEdges(), 1);
    req.decrement(3, 68);
    req.decrement(3, 68);
    EXPECT_TRUE(wordset::testBit(req.rowMask(3), 68));
    EXPECT_EQ(req.numEdges(), 1);

    // The last cell clears the bit in both views.
    req.decrement(3, 68);
    EXPECT_FALSE(wordset::testBit(req.rowMask(3), 68));
    EXPECT_FALSE(wordset::testBit(req.colMask(68), 3));
    EXPECT_EQ(req.numEdges(), 0);
}

TEST(RequestMatrixTest, MasksMatchCountsOnRandomPatterns)
{
    Xoshiro256 rng(9);
    for (int n : {5, 64, 100}) {
        auto req = RequestMatrix::bernoulli(n, 0.3, rng);
        int edges = 0;
        for (PortId i = 0; i < n; ++i) {
            for (PortId j = 0; j < n; ++j) {
                EXPECT_EQ(wordset::testBit(req.rowMask(i), j),
                          req.has(i, j));
                EXPECT_EQ(wordset::testBit(req.colMask(j), i),
                          req.has(i, j));
                if (req.has(i, j))
                    ++edges;
            }
        }
        EXPECT_EQ(req.numEdges(), edges);
    }
}

TEST(RequestMatrixTest, ClearRowAndColumn)
{
    RequestMatrix req(6);
    for (PortId i = 0; i < 6; ++i)
        for (PortId j = 0; j < 6; ++j)
            req.set(i, j, 1 + static_cast<int>(i));
    EXPECT_EQ(req.numEdges(), 36);

    req.clearRow(2);
    EXPECT_EQ(req.numEdges(), 30);
    for (PortId j = 0; j < 6; ++j) {
        EXPECT_EQ(req.count(2, j), 0);
        EXPECT_FALSE(wordset::testBit(req.colMask(j), 2));
    }

    req.clearColumn(4);
    EXPECT_EQ(req.numEdges(), 25);
    for (PortId i = 0; i < 6; ++i) {
        EXPECT_EQ(req.count(i, 4), 0);
        EXPECT_FALSE(wordset::testBit(req.rowMask(i), 4));
    }
    // Clearing an already-clear line is a no-op.
    req.clearRow(2);
    req.clearColumn(4);
    EXPECT_EQ(req.numEdges(), 25);
}

TEST(RequestMatrixTest, CopyAssignPreservesMaskView)
{
    RequestMatrix a(5);
    a.set(1, 2, 3);
    a.set(4, 0, 1);
    RequestMatrix b(5);
    b.set(0, 0, 9);
    b = a;
    EXPECT_EQ(b.numEdges(), 2);
    EXPECT_FALSE(b.has(0, 0));
    EXPECT_TRUE(wordset::testBit(b.rowMask(1), 2));
    EXPECT_TRUE(wordset::testBit(b.colMask(0), 4));
    b.clearRow(1);  // mutating the copy leaves the original intact
    EXPECT_TRUE(a.has(1, 2));
    EXPECT_EQ(a.numEdges(), 2);
}

TEST(RequestMatrixLiveness, DeadPortHidesWithoutDiscarding)
{
    RequestMatrix req(4);
    req.set(1, 2, 3);
    req.set(1, 3, 1);
    req.set(0, 2, 2);
    EXPECT_EQ(req.numEdges(), 3);
    EXPECT_TRUE(req.allPortsLive());

    req.setInputLive(1, false);
    EXPECT_FALSE(req.inputLive(1));
    EXPECT_FALSE(req.allPortsLive());
    EXPECT_FALSE(req.has(1, 2));
    EXPECT_FALSE(req.has(1, 3));
    EXPECT_TRUE(req.has(0, 2));
    EXPECT_EQ(req.numEdges(), 1);
    // Counts survive underneath the mask.
    EXPECT_EQ(req.count(1, 2), 3);
    EXPECT_FALSE(wordset::testBit(req.rowMask(1), 2));
    EXPECT_FALSE(wordset::testBit(req.colMask(2), 1));
    EXPECT_TRUE(wordset::testBit(req.colMask(2), 0));

    req.setInputLive(1, true);
    EXPECT_TRUE(req.allPortsLive());
    EXPECT_TRUE(req.has(1, 2));
    EXPECT_EQ(req.numEdges(), 3);
    EXPECT_TRUE(wordset::testBit(req.rowMask(1), 2));
}

TEST(RequestMatrixLiveness, DeadOutputHidesColumn)
{
    RequestMatrix req(4);
    req.set(0, 1, 1);
    req.set(2, 1, 1);
    req.set(2, 3, 1);

    req.setOutputLive(1, false);
    EXPECT_FALSE(req.outputLive(1));
    EXPECT_FALSE(req.has(0, 1));
    EXPECT_FALSE(req.has(2, 1));
    EXPECT_TRUE(req.has(2, 3));
    EXPECT_EQ(req.numEdges(), 1);
    EXPECT_FALSE(wordset::testBit(req.rowMask(0), 1));
    EXPECT_FALSE(wordset::testBit(req.rowMask(2), 1));

    req.setOutputLive(1, true);
    EXPECT_EQ(req.numEdges(), 3);
    EXPECT_TRUE(wordset::testBit(req.colMask(1), 0));
    EXPECT_TRUE(wordset::testBit(req.colMask(1), 2));
}

TEST(RequestMatrixLiveness, MutationsWhileDeadStayHidden)
{
    // set/increment/decrement on a dead row must keep the edge hidden
    // and re-expose whatever count survives at revival.
    RequestMatrix req(4);
    req.set(2, 0, 2);
    req.setInputLive(2, false);

    req.increment(2, 1);     // new edge born hidden
    req.decrement(2, 0);     // 2 -> 1, still hidden
    req.set(2, 3, 5);
    req.set(2, 3, 0);        // born and killed while dead
    EXPECT_EQ(req.numEdges(), 0);
    EXPECT_FALSE(req.has(2, 0));
    EXPECT_FALSE(req.has(2, 1));

    req.setInputLive(2, true);
    EXPECT_EQ(req.numEdges(), 2);
    EXPECT_TRUE(req.has(2, 0));
    EXPECT_EQ(req.count(2, 0), 1);
    EXPECT_TRUE(req.has(2, 1));
    EXPECT_FALSE(req.has(2, 3));
}

TEST(RequestMatrixLiveness, IdempotentAndSurvivesClear)
{
    RequestMatrix req(3);
    req.set(0, 0, 1);
    req.setInputLive(0, false);
    req.setInputLive(0, false);  // idempotent
    EXPECT_EQ(req.numEdges(), 0);

    req.clear();
    EXPECT_EQ(req.numEdges(), 0);
    EXPECT_FALSE(req.inputLive(0));  // liveness survives clear()
    req.set(0, 1, 1);
    req.set(1, 1, 1);
    EXPECT_EQ(req.numEdges(), 1);  // dead input's new request hidden

    req.setInputLive(0, true);
    req.setInputLive(0, true);  // idempotent
    EXPECT_EQ(req.numEdges(), 2);
}

TEST(RequestMatrixDirty, EdgeTransitionsMarkRowsAndCols)
{
    RequestMatrix req(6);
    req.clearDirty();
    const uint64_t e0 = req.epoch();
    EXPECT_FALSE(req.anyDirty());

    req.set(2, 4, 1);  // edge born
    EXPECT_TRUE(req.rowDirty(2));
    EXPECT_TRUE(req.colDirty(4));
    EXPECT_FALSE(req.rowDirty(1));
    EXPECT_FALSE(req.colDirty(3));
    EXPECT_GT(req.epoch(), e0);

    req.clearDirty();
    EXPECT_FALSE(req.anyDirty());
    const uint64_t e1 = req.epoch();
    EXPECT_EQ(req.epoch(), e1);  // clearDirty leaves the epoch alone

    // A count change that does not cross zero changes no visible edge.
    req.increment(2, 4);
    EXPECT_FALSE(req.anyDirty());
    EXPECT_EQ(req.epoch(), e1);

    req.decrement(2, 4);  // 2 -> 1, still present
    EXPECT_FALSE(req.anyDirty());
    req.decrement(2, 4);  // edge dies
    EXPECT_TRUE(req.rowDirty(2));
    EXPECT_TRUE(req.colDirty(4));
    EXPECT_GT(req.epoch(), e1);
}

TEST(RequestMatrixDirty, ClearLinesMarkEveryAffectedEdge)
{
    RequestMatrix req(5);
    req.set(1, 0, 1);
    req.set(1, 3, 2);
    req.set(4, 3, 1);
    req.clearDirty();

    req.clearRow(1);
    EXPECT_TRUE(req.rowDirty(1));
    EXPECT_TRUE(req.colDirty(0));
    EXPECT_TRUE(req.colDirty(3));
    EXPECT_FALSE(req.rowDirty(4));

    req.clearDirty();
    req.clearColumn(3);
    EXPECT_TRUE(req.rowDirty(4));
    EXPECT_TRUE(req.colDirty(3));
    EXPECT_FALSE(req.rowDirty(1));  // row 1 had nothing left in col 3

    // Clearing empty lines changes nothing.
    req.clearDirty();
    const uint64_t e = req.epoch();
    req.clearRow(1);
    req.clearColumn(3);
    EXPECT_FALSE(req.anyDirty());
    EXPECT_EQ(req.epoch(), e);
}

TEST(RequestMatrixDirty, LivenessFlipsMarkHiddenAndRevivedEdges)
{
    RequestMatrix req(4);
    req.set(2, 1, 1);
    req.set(2, 3, 2);
    req.clearDirty();
    const uint64_t e0 = req.epoch();

    // Killing the input hides two visible edges -> both marked.
    req.setInputLive(2, false);
    EXPECT_TRUE(req.rowDirty(2));
    EXPECT_TRUE(req.colDirty(1));
    EXPECT_TRUE(req.colDirty(3));
    EXPECT_GT(req.epoch(), e0);

    // Mutations while dead stay invisible and mark nothing new.
    req.clearDirty();
    req.increment(2, 0);  // born hidden
    EXPECT_FALSE(req.anyDirty());

    // Revival re-exposes the surviving requests -> marked again,
    // including the one that appeared while the port was dead.
    req.setInputLive(2, true);
    EXPECT_TRUE(req.rowDirty(2));
    EXPECT_TRUE(req.colDirty(0));
    EXPECT_TRUE(req.colDirty(1));
    EXPECT_TRUE(req.colDirty(3));

    // Same via the output side.
    req.clearDirty();
    req.setOutputLive(1, false);
    EXPECT_TRUE(req.rowDirty(2));
    EXPECT_TRUE(req.colDirty(1));
    req.clearDirty();
    req.setOutputLive(1, true);
    EXPECT_TRUE(req.colDirty(1));
}

TEST(RequestMatrixDirty, CopyConservativelyMarksAllAndBumpsEpoch)
{
    RequestMatrix a(4);
    a.set(0, 0, 1);
    RequestMatrix b(4);
    b.set(3, 3, 1);
    // Drive both epochs forward so max() matters.
    for (int k = 0; k < 5; ++k) {
        b.set(1, 1, 1);
        b.set(1, 1, 0);
    }
    a.clearDirty();
    b.clearDirty();
    const uint64_t ea = a.epoch();
    const uint64_t eb = b.epoch();

    b = a;
    // Every row/column dirty, epoch strictly past both operands: a warm
    // consumer remembering either epoch can never mistake the copy for
    // an unchanged matrix.
    for (PortId p = 0; p < 4; ++p) {
        EXPECT_TRUE(b.rowDirty(p));
        EXPECT_TRUE(b.colDirty(p));
    }
    EXPECT_GT(b.epoch(), ea);
    EXPECT_GT(b.epoch(), eb);

    RequestMatrix c(a);  // copy-construction likewise
    for (PortId p = 0; p < 4; ++p) {
        EXPECT_TRUE(c.rowDirty(p));
        EXPECT_TRUE(c.colDirty(p));
    }
    EXPECT_GT(c.epoch(), a.epoch());
}

TEST(RequestMatrixLiveness, ClearLinesOnMaskedMatrix)
{
    RequestMatrix req(4);
    for (PortId i = 0; i < 4; ++i)
        for (PortId j = 0; j < 4; ++j)
            req.set(i, j, 1);
    req.setInputLive(1, false);
    EXPECT_EQ(req.numEdges(), 12);

    req.clearRow(1);  // clearing a dead row zeroes the hidden counts
    EXPECT_EQ(req.count(1, 0), 0);
    EXPECT_EQ(req.numEdges(), 12);
    req.setInputLive(1, true);  // nothing left to re-expose
    EXPECT_EQ(req.numEdges(), 12);

    req.setOutputLive(2, false);
    EXPECT_EQ(req.numEdges(), 9);
    req.clearColumn(2);
    req.setOutputLive(2, true);
    EXPECT_EQ(req.numEdges(), 9);
}

}  // namespace
}  // namespace an2
