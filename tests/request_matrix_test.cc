// Tests for the request matrix (an2/matching/request_matrix.h).
#include "an2/matching/request_matrix.h"

#include <gtest/gtest.h>

namespace an2 {
namespace {

TEST(RequestMatrixTest, StartsEmpty)
{
    RequestMatrix req(4);
    EXPECT_EQ(req.numEdges(), 0);
    EXPECT_EQ(req.totalCells(), 0);
    EXPECT_FALSE(req.has(0, 0));
}

TEST(RequestMatrixTest, SetIncrementDecrement)
{
    RequestMatrix req(4);
    req.set(1, 2, 3);
    EXPECT_TRUE(req.has(1, 2));
    EXPECT_EQ(req.count(1, 2), 3);
    req.increment(1, 2);
    EXPECT_EQ(req.count(1, 2), 4);
    req.decrement(1, 2);
    EXPECT_EQ(req.count(1, 2), 3);
    EXPECT_EQ(req.numEdges(), 1);
    EXPECT_EQ(req.totalCells(), 3);
}

TEST(RequestMatrixTest, DecrementEmptyPanics)
{
    RequestMatrix req(2);
    EXPECT_THROW(req.decrement(0, 0), InternalError);
}

TEST(RequestMatrixTest, NegativeCountRejected)
{
    RequestMatrix req(2);
    EXPECT_THROW(req.set(0, 0, -1), UsageError);
}

TEST(RequestMatrixTest, ClearEmpties)
{
    RequestMatrix req(3);
    req.set(0, 0, 2);
    req.set(2, 1, 1);
    req.clear();
    EXPECT_EQ(req.totalCells(), 0);
    EXPECT_EQ(req.numEdges(), 0);
}

TEST(RequestMatrixTest, RectangularDimensions)
{
    RequestMatrix req(2, 5);
    EXPECT_EQ(req.numInputs(), 2);
    EXPECT_EQ(req.numOutputs(), 5);
    req.set(1, 4, 1);
    EXPECT_TRUE(req.has(1, 4));
}

TEST(RequestMatrixTest, BernoulliDensityMatchesP)
{
    Xoshiro256 rng(1);
    int edges = 0;
    constexpr int kTrials = 200;
    constexpr int kN = 16;
    for (int t = 0; t < kTrials; ++t) {
        auto req = RequestMatrix::bernoulli(kN, 0.25, rng);
        edges += req.numEdges();
    }
    double density =
        static_cast<double>(edges) / (kTrials * kN * kN);
    EXPECT_NEAR(density, 0.25, 0.01);
}

TEST(RequestMatrixTest, BernoulliExtremes)
{
    Xoshiro256 rng(2);
    EXPECT_EQ(RequestMatrix::bernoulli(8, 0.0, rng).numEdges(), 0);
    EXPECT_EQ(RequestMatrix::bernoulli(8, 1.0, rng).numEdges(), 64);
}

}  // namespace
}  // namespace an2
