// Tests for the AN2 input-queued switch (an2/sim/iq_switch.h): VOQ + PIM
// scheduling, CBR frame-schedule integration, and output speedup.
#include "an2/sim/iq_switch.h"

#include <gtest/gtest.h>

#include <map>

#include "an2/cbr/slepian_duguid.h"
#include "an2/matching/pim.h"
#include "an2/sim/simulator.h"
#include "an2/sim/traffic.h"

namespace an2 {
namespace {

std::unique_ptr<Matcher>
pim(int iterations = 4, uint64_t seed = 1)
{
    PimConfig cfg;
    cfg.iterations = iterations;
    cfg.seed = seed;
    return std::make_unique<PimMatcher>(cfg);
}

Cell
vbrCell(FlowId flow, PortId in, PortId out, int64_t seq = 0)
{
    Cell c;
    c.flow = flow;
    c.input = in;
    c.output = out;
    c.seq = seq;
    return c;
}

TEST(IqSwitchTest, ForwardsWithoutContention)
{
    InputQueuedSwitch sw({.n = 4}, pim());
    sw.acceptCell(vbrCell(0, 0, 1));
    sw.acceptCell(vbrCell(1, 2, 3));
    auto departed = sw.runSlot(0);
    EXPECT_EQ(departed.size(), 2u);
    EXPECT_EQ(sw.bufferedCells(), 0);
    EXPECT_EQ(sw.vbrForwarded(), 2);
}

TEST(IqSwitchTest, NoHolBlockingAcrossVoqs)
{
    // The FifoSwitch HOL scenario: input 0 holds cells for outputs 0 and
    // 1, input 1 holds a cell for output 0. A VOQ switch must move two
    // cells in the first slot regardless of who wins output 0.
    InputQueuedSwitch sw({.n = 2}, pim(4));
    sw.acceptCell(vbrCell(0, 0, 0));
    sw.acceptCell(vbrCell(1, 0, 1));
    sw.acceptCell(vbrCell(2, 1, 0));
    auto departed = sw.runSlot(0);
    EXPECT_EQ(departed.size(), 2u);
}

TEST(IqSwitchTest, FullLoadThroughputNearOne)
{
    InputQueuedSwitch sw({.n = 16}, pim(4, 7));
    UniformTraffic traffic(16, 1.0, 8);
    SimConfig cfg;
    cfg.slots = 30'000;
    cfg.warmup = 5'000;
    SimResult res = runSimulation(sw, traffic, cfg);
    // PIM(4) sustains nearly full switch throughput (Figure 3).
    EXPECT_GT(res.throughput, 0.93);
}

TEST(IqSwitchTest, PerFlowOrderPreservedEndToEnd)
{
    InputQueuedSwitch sw({.n = 8}, pim(4, 9));
    UniformTraffic traffic(8, 0.8, 10);
    std::map<FlowId, int64_t> last_seq;
    SimConfig cfg;
    cfg.slots = 20'000;
    cfg.warmup = 0;
    cfg.on_delivered = [&](const Cell& c, SlotTime) {
        auto [it, inserted] = last_seq.try_emplace(c.flow, -1);
        EXPECT_GT(c.seq, it->second) << "flow " << c.flow << " re-ordered";
        it->second = c.seq;
    };
    runSimulation(sw, traffic, cfg);
}

TEST(IqSwitchTest, CbrCellRequiresSchedule)
{
    InputQueuedSwitch sw({.n = 4}, pim());
    Cell c = vbrCell(0, 0, 1);
    c.cls = TrafficClass::CBR;
    EXPECT_THROW(sw.acceptCell(c), UsageError);
}

TEST(IqSwitchTest, CbrRidesItsScheduledSlots)
{
    // Reserve 2 cells/frame (frame = 4 slots) from input 1 to output 2.
    SlepianDuguidScheduler sd(4, 4);
    ASSERT_TRUE(sd.addReservation(1, 2, 2));
    InputQueuedSwitch sw({.n = 4}, pim(), &sd.schedule());

    // Queue 4 CBR cells; they must depart exactly 2 per frame.
    for (int s = 0; s < 4; ++s) {
        Cell c = vbrCell(0, 1, 2, s);
        c.cls = TrafficClass::CBR;
        sw.acceptCell(c);
    }
    int64_t departed_frame1 = 0;
    for (SlotTime slot = 0; slot < 4; ++slot)
        departed_frame1 += static_cast<int64_t>(sw.runSlot(slot).size());
    EXPECT_EQ(departed_frame1, 2);
    int64_t departed_frame2 = 0;
    for (SlotTime slot = 4; slot < 8; ++slot)
        departed_frame2 += static_cast<int64_t>(sw.runSlot(slot).size());
    EXPECT_EQ(departed_frame2, 2);
    EXPECT_EQ(sw.cbrForwarded(), 4);
}

TEST(IqSwitchTest, CbrGuaranteeUnmovedByVbrOverload)
{
    // Saturating VBR traffic must not take anything from a CBR
    // reservation: the reserved flow still gets its cells/frame.
    constexpr int kN = 4;
    constexpr int kFrame = 8;
    constexpr int kReserved = 4;  // half of input 0's link
    SlepianDuguidScheduler sd(kN, kFrame);
    ASSERT_TRUE(sd.addReservation(0, 1, kReserved));
    InputQueuedSwitch sw({.n = kN}, pim(4, 11), &sd.schedule());

    Xoshiro256 rng(12);
    int64_t cbr_seq = 0;
    int64_t cbr_delivered = 0;
    constexpr int kFrames = 200;
    for (SlotTime slot = 0; slot < kFrames * kFrame; ++slot) {
        // CBR source: always backlogged.
        Cell c = vbrCell(100, 0, 1, cbr_seq++);
        c.cls = TrafficClass::CBR;
        c.inject_slot = slot;
        sw.acceptCell(c);
        // VBR overload: every input fires a cell at a random output every
        // slot (including input 0 and output 1). One flow per connection.
        for (PortId i = 0; i < kN; ++i) {
            auto j = static_cast<PortId>(rng.nextBelow(kN));
            Cell v = vbrCell(i * kN + j, i, j);
            v.inject_slot = slot;
            sw.acceptCell(v);
        }
        for (const Cell& d : sw.runSlot(slot))
            if (d.cls == TrafficClass::CBR)
                ++cbr_delivered;
    }
    // Perfect pacing: exactly kReserved per frame once started.
    EXPECT_GE(cbr_delivered, (kFrames - 2) * kReserved);
}

TEST(IqSwitchTest, IdleCbrSlotsFallToVbr)
{
    // A reservation with no queued CBR cells must not waste slots: VBR
    // fills them (§4), tracked by vbrInCbrSlots().
    constexpr int kN = 2;
    SlepianDuguidScheduler sd(kN, 2);
    ASSERT_TRUE(sd.addReservation(0, 1, 2));  // input 0 fully reserved
    InputQueuedSwitch sw({.n = kN}, pim(4, 13), &sd.schedule());
    // Only VBR cells, on the reserved pair.
    for (int s = 0; s < 100; ++s) {
        sw.acceptCell(vbrCell(0, 0, 1, s));
        auto departed = sw.runSlot(s);
        ASSERT_EQ(departed.size(), 1u);
    }
    EXPECT_EQ(sw.vbrForwarded(), 100);
    EXPECT_EQ(sw.vbrInCbrSlots(), 100);
    EXPECT_EQ(sw.cbrForwarded(), 0);
}

TEST(IqSwitchTest, ScheduleUpdatedDynamicallyMidRun)
{
    // §4: "The slot assignment can be changed dynamically without
    // disrupting guaranteed performance." The switch holds a pointer to
    // the live schedule; adding a reservation between slots must take
    // effect immediately and leave existing flows untouched.
    constexpr int kN = 4;
    constexpr int kFrame = 8;
    SlepianDuguidScheduler sd(kN, kFrame);
    ASSERT_TRUE(sd.addReservation(0, 1, 4));
    InputQueuedSwitch sw({.n = kN}, pim(4, 31), &sd.schedule());

    auto inject = [&](FlowId f, PortId i, PortId j, SlotTime slot) {
        Cell c = vbrCell(f, i, j);
        c.cls = TrafficClass::CBR;
        c.inject_slot = slot;
        sw.acceptCell(c);
    };

    int64_t flow_a = 0;
    int64_t flow_b = 0;
    for (SlotTime slot = 0; slot < 40 * kFrame; ++slot) {
        if (slot == 20 * kFrame) {
            // Mid-run: a new flow reserves half of input 2's link. The
            // swap chains may move flow A's slots around, but its
            // cells/frame must not change.
            ASSERT_TRUE(sd.addReservation(2, 3, 4));
        }
        inject(900, 0, 1, slot);  // flow A backlogged from the start
        if (slot >= 20 * kFrame)
            inject(901, 2, 3, slot);  // flow B after its reservation
        for (const Cell& d : sw.runSlot(slot)) {
            if (d.flow == 900)
                ++flow_a;
            else if (d.flow == 901)
                ++flow_b;
        }
    }
    // Flow A: 4/frame for all 40 frames (within one frame of slack).
    EXPECT_GE(flow_a, (40 - 1) * 4);
    // Flow B: 4/frame for the last 20 frames.
    EXPECT_GE(flow_b, (20 - 2) * 4);
}

TEST(IqSwitchTest, OutputSpeedupCrossesKCellsPerSlot)
{
    // Four inputs all sending to output 0. With speedup 2 (and a matcher
    // granting up to 2 per output), two cells cross the fabric per slot,
    // while the output link still departs one cell per slot.
    PimConfig mcfg;
    mcfg.iterations = 4;
    mcfg.output_capacity = 2;
    mcfg.seed = 14;
    InputQueuedSwitch sw({.n = 4, .output_speedup = 2},
                         std::make_unique<PimMatcher>(mcfg));
    for (PortId i = 0; i < 4; ++i)
        sw.acceptCell(vbrCell(i, i, 0));
    auto d0 = sw.runSlot(0);
    EXPECT_EQ(d0.size(), 1u);  // link departs 1/slot
    // Two cells crossed the replicated fabric in slot 0.
    EXPECT_EQ(sw.crossbar().cellsForwarded(), 2);
    EXPECT_EQ(sw.bufferedCells(), 3);  // 2 at inputs + 1 in output queue
    EXPECT_EQ(sw.runSlot(1).size(), 1u);
    EXPECT_EQ(sw.crossbar().cellsForwarded(), 4);  // all inputs drained
    EXPECT_EQ(sw.runSlot(2).size(), 1u);
    EXPECT_EQ(sw.runSlot(3).size(), 1u);
    EXPECT_EQ(sw.bufferedCells(), 0);
}

TEST(IqSwitchTest, PipelinedModeAddsOneSlotOfLatency)
{
    // A lone cell arriving in slot 0: the unpipelined switch forwards it
    // in slot 0; the pipelined switch computes the matching during slot
    // 0 and transmits in slot 1 (§3.2's "time to receive one cell").
    InputQueuedSwitch direct({.n = 4}, pim(4, 41));
    InputQueuedSwitch piped({.n = 4, .output_speedup = 1, .pipelined = true},
                            pim(4, 41));
    Cell c = vbrCell(0, 1, 2);
    direct.acceptCell(c);
    piped.acceptCell(c);
    EXPECT_EQ(direct.runSlot(0).size(), 1u);
    EXPECT_EQ(piped.runSlot(0).size(), 0u);  // pipeline fill
    EXPECT_EQ(piped.runSlot(1).size(), 1u);
    EXPECT_EQ(piped.bufferedCells(), 0);
}

TEST(IqSwitchTest, PipelinedThroughputMatchesDirectAtSaturation)
{
    // The pipeline shifts delay by one slot but must not cost
    // throughput: at full load both variants saturate identically.
    InputQueuedSwitch direct({.n = 8}, pim(4, 42));
    InputQueuedSwitch piped({.n = 8, .output_speedup = 1, .pipelined = true},
                            pim(4, 42));
    UniformTraffic t1(8, 1.0, 43);
    UniformTraffic t2(8, 1.0, 43);
    SimConfig cfg;
    cfg.slots = 20'000;
    cfg.warmup = 4'000;
    SimResult rd = runSimulation(direct, t1, cfg);
    SimResult rp = runSimulation(piped, t2, cfg);
    EXPECT_NEAR(rp.throughput, rd.throughput, 0.01);
    EXPECT_GT(rp.mean_delay, rd.mean_delay);  // the extra pipeline slot
}

TEST(IqSwitchTest, PipelinedCbrPriorityOverStaleMatching)
{
    // The pipelined VBR matching may claim a port that a CBR cell
    // (arriving after the matching was computed) is scheduled to use;
    // the CBR cell must win and the VBR pair is dropped for that slot.
    SlepianDuguidScheduler sd(2, 1);  // every slot schedules (0 -> 1)
    ASSERT_TRUE(sd.addReservation(0, 1, 1));
    InputQueuedSwitch sw({.n = 2, .output_speedup = 1, .pipelined = true},
                         pim(4, 44), &sd.schedule());
    // Slot 0: only a VBR cell on the reserved pair; the pipeline
    // computes a matching for slot 1 using the idle reservation.
    sw.acceptCell(vbrCell(10, 0, 1, 0));
    EXPECT_EQ(sw.runSlot(0).size(), 0u);
    // A CBR cell arrives before slot 1: it owns the scheduled pair.
    Cell c = vbrCell(11, 0, 1, 0);
    c.cls = TrafficClass::CBR;
    sw.acceptCell(c);
    auto departed = sw.runSlot(1);
    ASSERT_EQ(departed.size(), 1u);
    EXPECT_EQ(departed[0].cls, TrafficClass::CBR);
    // The VBR cell follows once the reservation goes idle again.
    auto later = sw.runSlot(2);
    ASSERT_EQ(later.size(), 1u);
    EXPECT_EQ(later[0].cls, TrafficClass::VBR);
    EXPECT_EQ(sw.bufferedCells(), 0);
}

TEST(IqSwitchTest, SpeedupWithCbrRejected)
{
    SlepianDuguidScheduler sd(4, 4);
    EXPECT_THROW(InputQueuedSwitch({.n = 4, .output_speedup = 2}, pim(),
                                   &sd.schedule()),
                 UsageError);
}

TEST(IqSwitchTest, CrossbarAccountsForwardedCells)
{
    InputQueuedSwitch sw({.n = 4}, pim());
    sw.acceptCell(vbrCell(0, 0, 1));
    sw.runSlot(0);
    EXPECT_EQ(sw.crossbar().cellsForwarded(), 1);
    EXPECT_EQ(sw.crossbar().slots(), 1);
}

TEST(IqSwitchTest, InvalidConstruction)
{
    EXPECT_THROW(InputQueuedSwitch({.n = 0}, pim()), UsageError);
    EXPECT_THROW(InputQueuedSwitch({.n = 4}, nullptr), UsageError);
    SlepianDuguidScheduler sd(8, 4);
    EXPECT_THROW(InputQueuedSwitch({.n = 4}, pim(), &sd.schedule()),
                 UsageError);
}

TEST(IqSwitchTest, NameDescribesConfiguration)
{
    InputQueuedSwitch sw({.n = 4}, pim(4));
    EXPECT_EQ(sw.name(), "IQ[PIM(4)]");
}

}  // namespace
}  // namespace an2
