// Tests for Hopcroft-Karp maximum matching (an2/matching/hopcroft_karp.h).
#include "an2/matching/hopcroft_karp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "an2/base/rng.h"

namespace an2 {
namespace {

/** Exhaustive maximum-matching size by trying all input subsets (small N). */
int
bruteForceMaximum(const RequestMatrix& req)
{
    int n_in = req.numInputs();
    int n_out = req.numOutputs();
    int best = 0;
    // Recursive assignment over inputs with used-output mask.
    std::function<void(int, uint32_t, int)> go = [&](int i, uint32_t used,
                                                     int size) {
        if (i == n_in) {
            best = std::max(best, size);
            return;
        }
        go(i + 1, used, size);  // leave input i unmatched
        for (int j = 0; j < n_out; ++j) {
            if (req.has(i, j) && !(used & (1u << j)))
                go(i + 1, used | (1u << j), size + 1);
        }
    };
    go(0, 0, 0);
    return best;
}

TEST(HopcroftKarpTest, EmptyGraph)
{
    HopcroftKarpMatcher hk;
    RequestMatrix req(5);
    EXPECT_EQ(hk.match(req).size(), 0);
}

TEST(HopcroftKarpTest, PerfectMatchingOnPermutation)
{
    HopcroftKarpMatcher hk;
    RequestMatrix req(8);
    for (PortId i = 0; i < 8; ++i)
        req.set(i, (i * 3) % 8, 1);
    Matching m = hk.match(req);
    EXPECT_EQ(m.size(), 8);
    EXPECT_TRUE(m.isLegalFor(req));
}

TEST(HopcroftKarpTest, FindsAugmentingPathGreedyMisses)
{
    // The classic example: greedy matching (0,0) blocks (1,0); maximum
    // re-routes 0 to 1.
    RequestMatrix req(2);
    req.set(0, 0, 1);
    req.set(0, 1, 1);
    req.set(1, 0, 1);
    HopcroftKarpMatcher hk;
    Matching m = hk.match(req);
    EXPECT_EQ(m.size(), 2);
    EXPECT_EQ(m.outputOf(0), 1);
    EXPECT_EQ(m.outputOf(1), 0);
}

TEST(HopcroftKarpTest, MatchesBruteForceOnAllDensities)
{
    Xoshiro256 rng(17);
    for (int n : {2, 3, 4, 5, 6}) {
        for (double p : {0.15, 0.3, 0.5, 0.8}) {
            for (int t = 0; t < 30; ++t) {
                auto req = RequestMatrix::bernoulli(n, p, rng);
                HopcroftKarpMatcher hk;
                Matching m = hk.match(req);
                EXPECT_TRUE(m.isLegalFor(req));
                EXPECT_EQ(m.size(), bruteForceMaximum(req))
                    << "n=" << n << " p=" << p << " trial=" << t;
            }
        }
    }
}

TEST(HopcroftKarpTest, MaximumIsAlsoMaximal)
{
    Xoshiro256 rng(19);
    HopcroftKarpMatcher hk;
    for (int t = 0; t < 50; ++t) {
        auto req = RequestMatrix::bernoulli(12, 0.4, rng);
        Matching m = hk.match(req);
        EXPECT_TRUE(m.isMaximalFor(req));
    }
}

TEST(HopcroftKarpTest, FullBipartiteGraphSaturates)
{
    HopcroftKarpMatcher hk;
    RequestMatrix req(16);
    for (PortId i = 0; i < 16; ++i)
        for (PortId j = 0; j < 16; ++j)
            req.set(i, j, 1);
    EXPECT_EQ(hk.match(req).size(), 16);
}

TEST(HopcroftKarpTest, SizeHelperAgrees)
{
    Xoshiro256 rng(23);
    auto req = RequestMatrix::bernoulli(10, 0.3, rng);
    HopcroftKarpMatcher hk;
    EXPECT_EQ(maximumMatchingSize(req), hk.match(req).size());
}

TEST(HopcroftKarpTest, StarvationScenarioAlwaysExcludesWeakConnection)
{
    // §3.4: with a sufficient supply of cells, maximum matching *never*
    // serves (0,1) in this Figure 2-style pattern — input 0 requests
    // outputs {1,2}, input 1 requests {1} only, so the unique maximum
    // match pairs 1->1 and 0->2 every slot and connection (0,1) starves.
    RequestMatrix req(3);
    req.set(0, 1, 1);
    req.set(0, 2, 1);
    req.set(1, 1, 1);
    HopcroftKarpMatcher hk;
    for (int slot = 0; slot < 100; ++slot) {
        Matching m = hk.match(req);
        EXPECT_EQ(m.size(), 2);
        EXPECT_EQ(m.outputOf(0), 2);
        EXPECT_EQ(m.outputOf(1), 1);
    }
}

}  // namespace
}  // namespace an2
