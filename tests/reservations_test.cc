// Tests for the reservation matrix (an2/cbr/reservations.h).
#include "an2/cbr/reservations.h"

#include <gtest/gtest.h>

namespace an2 {
namespace {

TEST(ReservationMatrixTest, StartsEmptyAndFeasible)
{
    ReservationMatrix res(4, 100);
    EXPECT_TRUE(res.feasible());
    EXPECT_EQ(res.total(), 0);
    EXPECT_EQ(res.inputSlack(0), 100);
    EXPECT_EQ(res.outputSlack(3), 100);
}

TEST(ReservationMatrixTest, AddTracksLoads)
{
    ReservationMatrix res(4, 10);
    res.add(0, 2, 4);
    res.add(1, 2, 3);
    EXPECT_EQ(res.reserved(0, 2), 4);
    EXPECT_EQ(res.inputLoad(0), 4);
    EXPECT_EQ(res.outputLoad(2), 7);
    EXPECT_EQ(res.outputSlack(2), 3);
    EXPECT_EQ(res.total(), 7);
}

TEST(ReservationMatrixTest, CanAddRespectsBothLinks)
{
    ReservationMatrix res(2, 10);
    res.add(0, 0, 8);
    EXPECT_TRUE(res.canAdd(0, 1, 2));
    EXPECT_FALSE(res.canAdd(0, 1, 3));  // input 0 exhausted
    EXPECT_FALSE(res.canAdd(1, 0, 3));  // output 0 exhausted
    EXPECT_TRUE(res.canAdd(1, 1, 10));
}

TEST(ReservationMatrixTest, OverCommitRejected)
{
    ReservationMatrix res(2, 5);
    EXPECT_THROW(res.add(0, 0, 6), UsageError);
    res.add(0, 0, 5);
    EXPECT_THROW(res.add(0, 1, 1), UsageError);
}

TEST(ReservationMatrixTest, RemoveReleasesCapacity)
{
    ReservationMatrix res(2, 5);
    res.add(0, 0, 5);
    res.remove(0, 0, 2);
    EXPECT_EQ(res.reserved(0, 0), 3);
    EXPECT_TRUE(res.canAdd(0, 1, 2));
    EXPECT_THROW(res.remove(0, 0, 4), UsageError);
}

TEST(ReservationMatrixTest, FullAllocationFeasible)
{
    // A doubly-stochastic-like pattern saturating every link.
    constexpr int kN = 4;
    constexpr int kF = 8;
    ReservationMatrix res(kN, kF);
    for (int i = 0; i < kN; ++i)
        for (int j = 0; j < kN; ++j)
            res.add(i, j, kF / kN);
    EXPECT_TRUE(res.feasible());
    EXPECT_EQ(res.inputSlack(0), 0);
    EXPECT_FALSE(res.canAdd(0, 0, 1));
}

TEST(ReservationMatrixTest, InvalidConstruction)
{
    EXPECT_THROW(ReservationMatrix(0, 10), UsageError);
    EXPECT_THROW(ReservationMatrix(4, 0), UsageError);
}

}  // namespace
}  // namespace an2
