// Tests for the CIOQ switch (an2/sim/cioq_switch.h): speedup phases,
// per-class output scheduling (strict priority and WRR), conservation,
// fault masking, determinism, and the obs probe contract.
#include "an2/sim/cioq_switch.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "an2/base/error.h"
#include "an2/matching/serial_greedy.h"
#include "an2/obs/recorder.h"
#include "an2/sim/oq_switch.h"
#include "an2/sim/simulator.h"
#include "an2/sim/traffic.h"

namespace an2 {
namespace {

std::unique_ptr<CioqSwitch>
makeCioq(int n, int speedup,
         ServiceDiscipline service = ServiceDiscipline::Strict,
         uint64_t seed = 7)
{
    CioqSwitchConfig cfg;
    cfg.n = n;
    cfg.speedup = speedup;
    cfg.service = service;
    return std::make_unique<CioqSwitch>(
        cfg, std::make_unique<SerialGreedyMatcher>(true, seed));
}

Cell
cell(FlowId flow, PortId in, PortId out, TrafficClass cls,
     int64_t seq = 0)
{
    Cell c;
    c.flow = flow;
    c.input = in;
    c.output = out;
    c.cls = cls;
    c.seq = seq;
    return c;
}

TEST(CioqSwitchTest, ConfigIsValidated)
{
    EXPECT_THROW(makeCioq(4, 0), UsageError);
    EXPECT_THROW(makeCioq(4, 5), UsageError);
    EXPECT_THROW(makeCioq(0, 2), UsageError);
    CioqSwitchConfig cfg;
    cfg.n = 4;
    cfg.service = ServiceDiscipline::Wrr;
    cfg.wrr_weights = {4, 0, 1};
    EXPECT_THROW(CioqSwitch(cfg,
                            std::make_unique<SerialGreedyMatcher>(true, 1)),
                 UsageError);
}

TEST(CioqSwitchTest, NameDescribesMatcherSpeedupAndService)
{
    EXPECT_EQ(makeCioq(4, 2)->name(),
              "CIOQ[Greedy(random-order),S=2,strict]");
    EXPECT_EQ(makeCioq(4, 3, ServiceDiscipline::Wrr)->name(),
              "CIOQ[Greedy(random-order),S=3,wrr]");
}

TEST(CioqSwitchTest, OneDeparturePerOutputPerSlot)
{
    // Three inputs each hold a cell for output 1: with S = 2 two of
    // them cross into the output queue in the first slot, but the line
    // rate still caps departures at one per slot.
    auto sw = makeCioq(4, 2);
    sw->acceptCell(cell(0, 0, 1, TrafficClass::VBR));
    sw->acceptCell(cell(1, 2, 1, TrafficClass::VBR));
    sw->acceptCell(cell(2, 3, 1, TrafficClass::VBR));
    EXPECT_EQ(sw->runSlot(0).size(), 1u);
    EXPECT_EQ(sw->runSlot(1).size(), 1u);
    EXPECT_EQ(sw->runSlot(2).size(), 1u);
    EXPECT_EQ(sw->runSlot(3).size(), 0u);
    EXPECT_EQ(sw->bufferedCells(), 0);
}

TEST(CioqSwitchTest, SpeedupBoundsPhasesAndCellsCrossed)
{
    // A single input holds 4 cells for distinct outputs. With S = 2 it
    // can send at most 2 per slot; with S = 4, all 4 leave at once
    // (each phase's matching grants one VOQ of the input).
    for (int speedup : {1, 2, 4}) {
        auto sw = makeCioq(4, speedup);
        for (PortId j = 0; j < 4; ++j)
            sw->acceptCell(cell(j, 0, j, TrafficClass::VBR));
        auto departed = sw->runSlot(0);
        EXPECT_EQ(static_cast<int>(departed.size()), speedup)
            << "S=" << speedup;
    }
}

TEST(CioqSwitchTest, PhasesStopEarlyWhenRequestsDrain)
{
    // One lone cell: phase 1 moves it, later phases see an empty
    // request matrix and are skipped entirely.
    auto sw = makeCioq(4, 4);
    sw->acceptCell(cell(0, 0, 1, TrafficClass::VBR));
    sw->runSlot(0);
    EXPECT_EQ(sw->phasesRun(), 1);
    // An idle slot runs no phases at all.
    sw->runSlot(1);
    EXPECT_EQ(sw->phasesRun(), 1);
}

TEST(CioqSwitchTest, StrictPriorityServesCbrThenVbrThenBe)
{
    // Load one cell of each class into the same output's queues in
    // reverse priority order; strict priority must emit CBR, VBR, BE.
    auto sw = makeCioq(4, 4);
    sw->acceptCell(cell(0, 0, 1, TrafficClass::BE));
    sw->acceptCell(cell(1, 2, 1, TrafficClass::VBR));
    sw->acceptCell(cell(2, 3, 1, TrafficClass::CBR));
    std::vector<TrafficClass> order;
    for (SlotTime s = 0; s < 3; ++s) {
        auto departed = sw->runSlot(s);
        ASSERT_EQ(departed.size(), 1u) << "slot " << s;
        order.push_back(departed[0].cls);
    }
    EXPECT_EQ(order,
              (std::vector<TrafficClass>{TrafficClass::CBR,
                                         TrafficClass::VBR,
                                         TrafficClass::BE}));
}

TEST(CioqSwitchTest, WrrInterleavesClassesByWeight)
{
    // A single input feeds one output (crossing order = VOQ FIFO order,
    // 4 cells per slot at S = 4), so the output's class queues fill
    // deterministically. With weights {2, 1, 1} the WRR pointer must
    // emit the exact cycle CBR, CBR, VBR, BE — best-effort is never
    // starved, unlike strict priority.
    CioqSwitchConfig cfg;
    cfg.n = 4;
    cfg.speedup = 4;
    cfg.service = ServiceDiscipline::Wrr;
    cfg.wrr_weights = {2, 1, 1};
    CioqSwitch sw(cfg, std::make_unique<SerialGreedyMatcher>(true, 7));
    const TrafficClass batch[] = {TrafficClass::CBR, TrafficClass::VBR,
                                  TrafficClass::BE, TrafficClass::CBR};
    int64_t seq = 0;
    for (int rep = 0; rep < 2; ++rep)
        for (TrafficClass cls : batch)
            sw.acceptCell(cell(static_cast<FlowId>(cls), 0, 1, cls, seq++));
    std::vector<TrafficClass> order;
    for (SlotTime s = 0; s < 8; ++s) {
        auto departed = sw.runSlot(s);
        ASSERT_EQ(departed.size(), 1u) << "slot " << s;
        order.push_back(departed[0].cls);
    }
    EXPECT_EQ(order,
              (std::vector<TrafficClass>{
                  TrafficClass::CBR, TrafficClass::CBR, TrafficClass::VBR,
                  TrafficClass::BE, TrafficClass::CBR, TrafficClass::CBR,
                  TrafficClass::VBR, TrafficClass::BE}));
    EXPECT_EQ(sw.bufferedCells(), 0);
}

TEST(CioqSwitchTest, WrrIsWorkConservingWhenClassesEmpty)
{
    // Only BE traffic present: WRR must still serve every slot rather
    // than idling on empty higher-priority queues.
    CioqSwitchConfig cfg;
    cfg.n = 4;
    cfg.speedup = 2;
    cfg.service = ServiceDiscipline::Wrr;
    CioqSwitch sw(cfg, std::make_unique<SerialGreedyMatcher>(true, 9));
    for (int k = 0; k < 3; ++k)
        sw.acceptCell(cell(0, 0, 1, TrafficClass::BE, k));
    for (SlotTime s = 0; s < 3; ++s)
        EXPECT_EQ(sw.runSlot(s).size(), 1u) << "slot " << s;
    EXPECT_EQ(sw.bufferedCells(), 0);
}

TEST(CioqSwitchTest, ConservationHoldsUnderMultiClassLoad)
{
    auto sw = makeCioq(8, 2);
    MultiClassUniformTraffic traffic(8, 0.9, 42);
    SimConfig cfg;
    cfg.slots = 10'000;
    cfg.warmup = 0;
    SimResult res = runSimulation(*sw, traffic, cfg);
    // Every injected cell is delivered, still buffered, or accounted
    // as dropped (none here: no faults). The internal InvariantChecker
    // has already verified conservation at every slot boundary.
    EXPECT_EQ(res.injected,
              res.delivered + sw->bufferedCells() + sw->droppedCells());
    EXPECT_EQ(sw->droppedCells(), 0);
    EXPECT_GT(res.delivered, 0);
}

TEST(CioqSwitchTest, PerFlowOrderPreservedEndToEnd)
{
    auto sw = makeCioq(8, 3);
    MultiClassUniformTraffic traffic(8, 0.8, 10);
    std::map<FlowId, int64_t> last_seq;
    SimConfig cfg;
    cfg.slots = 10'000;
    cfg.warmup = 0;
    cfg.on_delivered = [&](const Cell& c, SlotTime) {
        auto [it, inserted] = last_seq.try_emplace(c.flow, -1);
        EXPECT_GT(c.seq, it->second) << "flow " << c.flow << " re-ordered";
        it->second = c.seq;
    };
    runSimulation(*sw, traffic, cfg);
}

TEST(CioqSwitchTest, SpeedupTwoTracksOutputQueueing)
{
    // The Cogill-Lall headline at test scale: greedy maximal matching
    // at S = 2 stays within 10% of the ideal output-queued switch's
    // mean delay at load 0.9, while S = 1 is far off it.
    const int n = 16;
    SimConfig cfg;
    cfg.slots = 40'000;
    cfg.warmup = 5'000;

    OutputQueuedSwitch oq(n);
    UniformTraffic t0(n, 0.9, 77);
    const double oq_delay = runSimulation(oq, t0, cfg).mean_delay;

    auto s2 = makeCioq(n, 2);
    UniformTraffic t1(n, 0.9, 77);
    const double s2_delay = runSimulation(*s2, t1, cfg).mean_delay;

    auto s1 = makeCioq(n, 1);
    UniformTraffic t2(n, 0.9, 77);
    const double s1_delay = runSimulation(*s1, t2, cfg).mean_delay;

    EXPECT_LT(s2_delay, oq_delay * 1.10);
    EXPECT_GT(s1_delay, oq_delay * 1.50);
}

TEST(CioqSwitchTest, DeterministicAcrossIdenticalRuns)
{
    auto run = [] {
        auto sw = makeCioq(8, 2, ServiceDiscipline::Wrr, 123);
        MultiClassUniformTraffic traffic(8, 0.9, 5);
        SimConfig cfg;
        cfg.slots = 5'000;
        cfg.warmup = 500;
        return runSimulation(*sw, traffic, cfg);
    };
    SimResult a = run();
    SimResult b = run();
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.mean_delay, b.mean_delay);
    EXPECT_EQ(a.throughput, b.throughput);
}

// ---------------------------------------------------------------- faults

TEST(CioqSwitchTest, DeadInputDropsArrivalsAtTheLineCard)
{
    auto sw = makeCioq(4, 2);
    sw->setInputPortLive(0, false);
    EXPECT_FALSE(sw->inputPortLive(0));
    sw->acceptCell(cell(0, 0, 1, TrafficClass::VBR));
    EXPECT_EQ(sw->bufferedCells(), 0);
    EXPECT_EQ(sw->droppedCells(), 1);
    EXPECT_EQ(sw->runSlot(0).size(), 0u);
    // Revival re-admits traffic.
    sw->setInputPortLive(0, true);
    sw->acceptCell(cell(0, 0, 1, TrafficClass::VBR, 1));
    EXPECT_EQ(sw->runSlot(1).size(), 1u);
}

TEST(CioqSwitchTest, DeadOutputHoldsItsQueuesUntilRevival)
{
    auto sw = makeCioq(4, 2);
    // Queue a cell, let it cross into the output queue, then kill the
    // output: the buffered cell must be held, not lost.
    sw->acceptCell(cell(0, 0, 1, TrafficClass::VBR));
    sw->acceptCell(cell(1, 2, 1, TrafficClass::VBR, 1));
    EXPECT_EQ(sw->runSlot(0).size(), 1u);
    sw->setOutputPortLive(1, false);
    EXPECT_FALSE(sw->outputPortLive(1));
    // New arrivals for the dead output are dropped at the line card;
    // the queued cell waits.
    sw->acceptCell(cell(2, 3, 1, TrafficClass::VBR));
    EXPECT_EQ(sw->droppedCells(), 1);
    for (SlotTime s = 1; s < 4; ++s)
        EXPECT_EQ(sw->runSlot(s).size(), 0u) << "slot " << s;
    EXPECT_EQ(sw->bufferedCells(), 1);
    sw->setOutputPortLive(1, true);
    EXPECT_EQ(sw->runSlot(4).size(), 1u);
    EXPECT_EQ(sw->bufferedCells(), 0);
}

TEST(CioqSwitchTest, MaskedFaultRunStaysConservative)
{
    auto sw = makeCioq(8, 2);
    MultiClassUniformTraffic traffic(8, 0.8, 17);
    SimConfig cfg;
    cfg.slots = 4'000;
    cfg.warmup = 0;
    int64_t injected = 0;
    int64_t delivered = 0;
    std::vector<Cell> arrivals;
    for (SlotTime slot = 0; slot < cfg.slots; ++slot) {
        if (slot == 1'000)
            sw->setOutputPortLive(3, false);
        if (slot == 2'000) {
            sw->setOutputPortLive(3, true);
            sw->setInputPortLive(5, false);
        }
        if (slot == 3'000)
            sw->setInputPortLive(5, true);
        arrivals.clear();
        traffic.generate(slot, arrivals);
        for (const Cell& c : arrivals) {
            ++injected;
            sw->acceptCell(c);
        }
        delivered += static_cast<int64_t>(sw->runSlot(slot).size());
    }
    EXPECT_GT(sw->droppedCells(), 0);
    EXPECT_EQ(injected,
              delivered + sw->bufferedCells() + sw->droppedCells());
}

// ------------------------------------------------------------------ obs

#ifndef AN2_OBS_DISABLED

TEST(CioqSwitchTest, ObsCountersFollowTheProbeContract)
{
    obs::RecorderConfig rc;
    rc.ports = 8;
    rc.track_latency = true;
    obs::Recorder rec(rc);
    obs::attach(&rec);
    auto sw = makeCioq(8, 2);
    MultiClassUniformTraffic traffic(8, 0.9, 23);
    SimConfig cfg;
    cfg.slots = 4'000;
    cfg.warmup = 0;
    SimResult res = runSimulation(*sw, traffic, cfg);
    obs::detach();

    // speedup_phases counts matching phases: at least one per busy
    // slot, at most S per slot.
    EXPECT_EQ(rec.counter(obs::Counter::SpeedupPhases), sw->phasesRun());
    EXPECT_GT(sw->phasesRun(), 0);
    EXPECT_LE(sw->phasesRun(), 2 * cfg.slots);

    // Per-class delivery counters partition total deliveries.
    const int64_t cbr = rec.counter(obs::Counter::CbrCellsDelivered);
    const int64_t vbr = rec.counter(obs::Counter::VbrCellsDelivered);
    const int64_t be = rec.counter(obs::Counter::BeCellsDelivered);
    EXPECT_EQ(cbr + vbr + be, res.delivered);
    EXPECT_EQ(rec.counter(obs::Counter::CellsDelivered), res.delivered);
    // The multi-class workload exercises all three classes.
    EXPECT_GT(cbr, 0);
    EXPECT_GT(vbr, 0);
    EXPECT_GT(be, 0);

    // The output-queue high-water-mark gauge mirrors the accessor.
    EXPECT_EQ(rec.gauge(obs::Gauge::OutputQueueHwm),
              sw->outputQueueHighWaterMark());
    EXPECT_GT(sw->outputQueueHighWaterMark(), 0);
}

TEST(CioqSwitchTest, FaultDropsAreCounted)
{
    obs::RecorderConfig rc;
    rc.ports = 4;
    obs::Recorder rec(rc);
    obs::attach(&rec);
    auto sw = makeCioq(4, 2);
    sw->setInputPortLive(0, false);
    sw->acceptCell(cell(0, 0, 1, TrafficClass::VBR));
    sw->runSlot(0);
    obs::detach();
    EXPECT_EQ(rec.counter(obs::Counter::CellsDroppedByFaults), 1);
}

#endif  // AN2_OBS_DISABLED

}  // namespace
}  // namespace an2
