// Tests for the FIFO-input-queued switch (an2/sim/fifo_switch.h),
// including the Karol 58% head-of-line saturation bound.
#include "an2/sim/fifo_switch.h"

#include <gtest/gtest.h>

#include <map>

#include "an2/sim/simulator.h"
#include "an2/sim/traffic.h"

namespace an2 {
namespace {

TEST(FifoSwitchTest, ForwardsSingleCell)
{
    FifoSwitch sw(4, 1);
    Cell c;
    c.flow = 0;
    c.input = 2;
    c.output = 3;
    sw.acceptCell(c);
    auto departed = sw.runSlot(0);
    ASSERT_EQ(departed.size(), 1u);
    EXPECT_EQ(departed[0].output, 3);
    EXPECT_EQ(sw.bufferedCells(), 0);
}

TEST(FifoSwitchTest, HeadOfLineBlocksSecondCell)
{
    FifoSwitch sw(2, 1);
    // Input 0 queue: [->0, ->1]. Input 1 queue: [->0]. Whatever wins
    // output 0, input 0's cell for output 1 cannot move unless its head
    // already departed.
    Cell a0;
    a0.flow = 0;
    a0.input = 0;
    a0.output = 0;
    Cell a1;
    a1.flow = 1;
    a1.input = 0;
    a1.output = 1;
    Cell b0;
    b0.flow = 2;
    b0.input = 1;
    b0.output = 0;
    sw.acceptCell(a0);
    sw.acceptCell(a1);
    sw.acceptCell(b0);
    auto departed = sw.runSlot(0);
    // Exactly one cell leaves: the winner of output 0. Output 1 idles
    // even though a cell wants it — HOL blocking.
    ASSERT_EQ(departed.size(), 1u);
    EXPECT_EQ(departed[0].output, 0);
}

TEST(FifoSwitchTest, WindowTwoRelievesThatBlocking)
{
    FifoSwitch sw(2, 1, /*window=*/2, /*rounds=*/2);
    Cell a0;
    a0.flow = 0;
    a0.input = 0;
    a0.output = 0;
    Cell a1;
    a1.flow = 1;
    a1.input = 0;
    a1.output = 1;
    Cell b0;
    b0.flow = 2;
    b0.input = 1;
    b0.output = 0;
    sw.acceptCell(a0);
    sw.acceptCell(a1);
    sw.acceptCell(b0);
    auto departed = sw.runSlot(0);
    // If input 1 wins output 0, input 0 can still send its second cell
    // to output 1; if input 0 wins, only one departs. Either way legal.
    EXPECT_GE(departed.size(), 1u);
    EXPECT_LE(departed.size(), 2u);
}

TEST(FifoSwitchTest, SaturationThroughputNearKarolBound)
{
    // Karol et al. (1987): FIFO input queueing saturates at ~58.6% per
    // link under uniform traffic, for large N; at N=16 the finite-size
    // value is a bit above 0.6.
    FifoSwitch sw(16, 42);
    UniformTraffic traffic(16, 1.0, 43);
    SimConfig cfg;
    cfg.slots = 30'000;
    cfg.warmup = 5'000;
    SimResult res = runSimulation(sw, traffic, cfg);
    EXPECT_GT(res.throughput, 0.55);
    EXPECT_LT(res.throughput, 0.68);
}

TEST(FifoSwitchTest, LowLoadDelayIsSmall)
{
    FifoSwitch sw(16, 44);
    UniformTraffic traffic(16, 0.1, 45);
    SimConfig cfg;
    cfg.slots = 20'000;
    cfg.warmup = 2'000;
    SimResult res = runSimulation(sw, traffic, cfg);
    EXPECT_LT(res.mean_delay, 1.0);
    // Essentially everything injected is delivered.
    EXPECT_GT(res.throughput / res.offered, 0.99);
}

TEST(FifoSwitchTest, PerInputFifoOrderPreserved)
{
    // Cells from one input to one output must depart in order (they share
    // a FIFO), even with windowing disabled.
    FifoSwitch sw(4, 46);
    UniformTraffic traffic(4, 0.5, 47);
    std::map<std::pair<PortId, PortId>, int64_t> next_seq;
    SimConfig cfg;
    cfg.slots = 20'000;
    cfg.warmup = 0;
    cfg.on_delivered = [&](const Cell& c, SlotTime) {
        auto key = std::make_pair(c.input, c.output);
        auto [it, inserted] = next_seq.try_emplace(key, -1);
        EXPECT_GT(c.seq, it->second);
        it->second = c.seq;
    };
    runSimulation(sw, traffic, cfg);
}

TEST(FifoSwitchTest, InvalidCellsRejected)
{
    FifoSwitch sw(2, 1);
    Cell bad;
    bad.input = 5;
    bad.output = 0;
    EXPECT_THROW(sw.acceptCell(bad), UsageError);
    bad.input = 0;
    bad.output = -1;
    EXPECT_THROW(sw.acceptCell(bad), UsageError);
}

TEST(FifoSwitchTest, NameEncodesWindow)
{
    EXPECT_EQ(FifoSwitch(4, 1).name(), "FIFO");
    EXPECT_EQ(FifoSwitch(4, 1, 4, 2).name(), "FIFO(window=4,rounds=2)");
}

}  // namespace
}  // namespace an2
