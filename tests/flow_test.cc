// Tests for flow descriptors and the flow table (an2/cell/flow.h).
#include "an2/cell/flow.h"

#include <gtest/gtest.h>

namespace an2 {
namespace {

TEST(FlowTableTest, SequentialIds)
{
    FlowTable t;
    EXPECT_EQ(t.addFlow(0, 1), 0);
    EXPECT_EQ(t.addFlow(2, 3), 1);
    EXPECT_EQ(t.size(), 2);
}

TEST(FlowTableTest, StoresFields)
{
    FlowTable t;
    FlowId f = t.addFlow(3, 5, TrafficClass::CBR, 12);
    const Flow& flow = t.flow(f);
    EXPECT_EQ(flow.id, f);
    EXPECT_EQ(flow.input, 3);
    EXPECT_EQ(flow.output, 5);
    EXPECT_EQ(flow.cls, TrafficClass::CBR);
    EXPECT_EQ(flow.cells_per_frame, 12);
}

TEST(FlowTableTest, VbrIgnoresReservation)
{
    FlowTable t;
    FlowId f = t.addFlow(0, 0, TrafficClass::VBR, 99);
    EXPECT_EQ(t.flow(f).cells_per_frame, 0);
}

TEST(FlowTableTest, UnknownIdThrows)
{
    FlowTable t;
    t.addFlow(0, 1);
    EXPECT_THROW(t.flow(1), UsageError);
    EXPECT_THROW(t.flow(-1), UsageError);
}

TEST(FlowTableTest, NegativePortsRejected)
{
    FlowTable t;
    EXPECT_THROW(t.addFlow(-1, 0), UsageError);
    EXPECT_THROW(t.addFlow(0, -1), UsageError);
    EXPECT_THROW(t.addFlow(0, 0, TrafficClass::CBR, -1), UsageError);
}

TEST(FlowTableTest, FlowsVectorInOrder)
{
    FlowTable t;
    t.addFlow(0, 1);
    t.addFlow(1, 2);
    ASSERT_EQ(t.flows().size(), 2u);
    EXPECT_EQ(t.flows()[0].output, 1);
    EXPECT_EQ(t.flows()[1].output, 2);
}

}  // namespace
}  // namespace an2
