// Tests for the crossbar fabric (an2/fabric/crossbar.h).
#include "an2/fabric/crossbar.h"

#include <gtest/gtest.h>

namespace an2 {
namespace {

TEST(CrossbarTest, StartsUnconfigured)
{
    Crossbar xb(4);
    for (PortId i = 0; i < 4; ++i)
        EXPECT_EQ(xb.routeOf(i), kNoPort);
    EXPECT_EQ(xb.slots(), 0);
    EXPECT_EQ(xb.crosspoints(), 16);
}

TEST(CrossbarTest, ConfigureSetsRoutes)
{
    Crossbar xb(4);
    Matching m(4);
    m.add(0, 2);
    m.add(3, 1);
    xb.configure(m);
    EXPECT_EQ(xb.routeOf(0), 2);
    EXPECT_EQ(xb.routeOf(3), 1);
    EXPECT_EQ(xb.routeOf(1), kNoPort);
    EXPECT_EQ(xb.slots(), 1);
}

TEST(CrossbarTest, ForwardRequiresConfiguredCrosspoint)
{
    Crossbar xb(4);
    Matching m(4);
    m.add(0, 2);
    xb.configure(m);
    Cell ok;
    ok.input = 0;
    ok.output = 2;
    EXPECT_NO_THROW(xb.forward(ok));
    Cell wrong;
    wrong.input = 0;
    wrong.output = 3;
    EXPECT_THROW(xb.forward(wrong), InternalError);
    Cell unrouted;
    unrouted.input = 1;
    unrouted.output = 1;
    EXPECT_THROW(xb.forward(unrouted), InternalError);
}

TEST(CrossbarTest, UtilizationAccounting)
{
    Crossbar xb(2);
    Matching full(2);
    full.add(0, 0);
    full.add(1, 1);
    Cell c00;
    c00.input = 0;
    c00.output = 0;
    Cell c11;
    c11.input = 1;
    c11.output = 1;
    xb.configure(full);
    xb.forward(c00);
    xb.forward(c11);
    Matching empty(2);
    xb.configure(empty);
    EXPECT_EQ(xb.cellsForwarded(), 2);
    EXPECT_EQ(xb.slots(), 2);
    EXPECT_DOUBLE_EQ(xb.utilization(), 0.5);
}

TEST(CrossbarTest, MismatchedMatchingRejected)
{
    Crossbar xb(4);
    Matching m(3);
    EXPECT_THROW(xb.configure(m), UsageError);
}

TEST(CrossbarTest, RectangularSupported)
{
    Crossbar xb(2, 5);
    EXPECT_EQ(xb.numInputs(), 2);
    EXPECT_EQ(xb.numOutputs(), 5);
    EXPECT_EQ(xb.crosspoints(), 10);
    Matching m(2, 5);
    m.add(1, 4);
    xb.configure(m);
    EXPECT_EQ(xb.routeOf(1), 4);
}

}  // namespace
}  // namespace an2
