/** Shortest-path, ECMP determinism, and failover properties of Router. */
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "an2/base/error.h"
#include "an2/topo/routing.h"
#include "an2/topo/topology.h"

using namespace an2;
using namespace an2::topo;

namespace {

/** True when `path` walks existing edges from src to dst. */
void
expectValidPath(const Topology& t, const std::vector<NodeId>& path,
                NodeId src, NodeId dst)
{
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), src);
    EXPECT_EQ(path.back(), dst);
    for (size_t k = 0; k + 1 < path.size(); ++k) {
        bool adjacent = false;
        for (const Neighbor& nb : t.neighbors(path[k]))
            adjacent = adjacent || nb.node == path[k + 1];
        EXPECT_TRUE(adjacent) << path[k] << " -> " << path[k + 1];
    }
}

}  // namespace

TEST(RoutingTest, PathsAreShortest)
{
    Topology t = Topology::fatTree(4, 2);
    Router r(t);
    std::vector<NodeId> hosts = t.hosts();
    for (size_t i = 0; i < hosts.size(); ++i) {
        NodeId src = hosts[i];
        NodeId dst = hosts[(i + 5) % hosts.size()];
        if (src == dst)
            continue;
        auto flow = static_cast<FlowId>(i);
        std::vector<NodeId> path = r.path(src, dst, flow);
        expectValidPath(t, path, src, dst);
        EXPECT_EQ(static_cast<int>(path.size()) - 1, r.distance(src, dst));
        // Every step makes progress: d decreases by exactly one.
        for (size_t k = 0; k + 1 < path.size(); ++k)
            EXPECT_EQ(r.distance(path[k], dst),
                      r.distance(path[k + 1], dst) + 1);
    }
}

TEST(RoutingTest, DistanceBasics)
{
    Topology t = Topology::star(2, 1);  // core 0, leaves 1-2, hosts 3-4
    Router r(t);
    EXPECT_EQ(r.distance(3, 3), 0);
    EXPECT_EQ(r.distance(3, 1), 1);
    EXPECT_EQ(r.distance(3, 4), 4);  // host-leaf-core-leaf-host
}

TEST(RoutingTest, EcmpPickIsAPureFunction)
{
    EXPECT_EQ(Router::ecmpPick(7, 3, 5), Router::ecmpPick(7, 3, 5));
    EXPECT_LT(Router::ecmpPick(7, 3, 5), 5u);
    EXPECT_EQ(Router::ecmpPick(0, 0, 1), 0u);
    // The hash must actually discriminate flows and nodes.
    std::set<size_t> picks;
    for (FlowId f = 0; f < 64; ++f)
        picks.insert(Router::ecmpPick(f, 3, 8));
    EXPECT_EQ(picks.size(), 8u);
}

TEST(RoutingTest, EcmpDeterministicAcrossRouters)
{
    Topology t = Topology::fatTree(4, 1);
    Router r1(t);
    Router r2(t);
    std::vector<NodeId> hosts = t.hosts();
    for (FlowId f = 0; f < 32; ++f) {
        NodeId src = hosts[static_cast<size_t>(f) % hosts.size()];
        NodeId dst = hosts[(static_cast<size_t>(f) + 3) % hosts.size()];
        EXPECT_EQ(r1.path(src, dst, f), r2.path(src, dst, f));
    }
}

TEST(RoutingTest, EcmpSpreadsFlowsOverParallelPaths)
{
    // Hosts in different pods of a fat-tree have (k/2)^2 = 4 equal-cost
    // paths; distinct flows should not all collapse onto one.
    Topology t = Topology::fatTree(4, 1);
    Router r(t);
    std::vector<NodeId> hosts = t.hosts();
    NodeId src = hosts.front();
    NodeId dst = hosts.back();
    std::set<std::vector<NodeId>> paths;
    for (FlowId f = 0; f < 64; ++f)
        paths.insert(r.path(src, dst, f));
    EXPECT_GT(paths.size(), 1u);
    for (const auto& p : paths)
        EXPECT_EQ(static_cast<int>(p.size()) - 1, r.distance(src, dst));
}

TEST(RoutingTest, DeadEdgeReroutesDeterministically)
{
    Topology t = Topology::fatTree(4, 1);
    Router r(t);
    std::vector<NodeId> hosts = t.hosts();
    NodeId src = hosts.front();
    NodeId dst = hosts.back();
    const FlowId flow = 11;
    std::vector<NodeId> before = r.path(src, dst, flow);

    // Kill the first trunk hop (edge switch -> aggregation) in the
    // forward direction only.
    NodeId u = before[1];
    NodeId v = before[2];
    int dead = -1;
    bool a_to_b = true;
    for (const Neighbor& nb : t.neighbors(u))
        if (nb.node == v) {
            dead = nb.edge;
            a_to_b = t.edge(nb.edge).a == u;
        }
    ASSERT_GE(dead, 0);
    r.setEdgeDirAlive(dead, a_to_b, false);
    EXPECT_FALSE(r.edgeDirAlive(dead, a_to_b));
    EXPECT_TRUE(r.edgeDirAlive(dead, !a_to_b));

    std::vector<NodeId> after = r.path(src, dst, flow);
    expectValidPath(t, after, src, dst);
    for (size_t k = 0; k + 1 < after.size(); ++k)
        EXPECT_FALSE(after[k] == u && after[k + 1] == v);
    // Plenty of equal-cost alternatives exist, so the reroute keeps the
    // hop count, and a second router with the same dead edge agrees.
    EXPECT_EQ(after.size(), before.size());
    Router r2(t);
    r2.setEdgeDirAlive(dead, a_to_b, false);
    EXPECT_EQ(r2.path(src, dst, flow), after);

    // Reviving restores the original choice (pure function of state).
    r.setEdgeDirAlive(dead, a_to_b, true);
    EXPECT_EQ(r.path(src, dst, flow), before);
}

TEST(RoutingTest, RevivalStormKeepsCachedFieldsFresh)
{
    // Regression: the per-destination distance fields are cached
    // against the router's liveness epoch. A kill -> revive -> kill of
    // the same link in quick succession (a flapping trunk inside one
    // metrics window) must invalidate the cache at every step — a stale
    // field from the first kill would hand out a next-hop across the
    // edge that just died again.
    Topology t = Topology::fatTree(4, 1);
    Router r(t);
    std::vector<NodeId> hosts = t.hosts();
    NodeId src = hosts.front();
    NodeId dst = hosts.back();
    const FlowId flow = 11;
    std::vector<NodeId> healthy = r.path(src, dst, flow);

    NodeId u = healthy[1];
    NodeId v = healthy[2];
    int dead = -1;
    bool a_to_b = true;
    for (const Neighbor& nb : t.neighbors(u))
        if (nb.node == v) {
            dead = nb.edge;
            a_to_b = t.edge(nb.edge).a == u;
        }
    ASSERT_GE(dead, 0);

    // Storm: kill, query (caches fields for the dead state), revive,
    // query, kill again, query. After the second kill the router must
    // agree with a fresh router built directly in the dead state.
    r.setEdgeDirAlive(dead, a_to_b, false);
    std::vector<NodeId> dead1 = r.path(src, dst, flow);
    expectValidPath(t, dead1, src, dst);
    for (size_t k = 0; k + 1 < dead1.size(); ++k)
        EXPECT_FALSE(dead1[k] == u && dead1[k + 1] == v);

    r.setEdgeDirAlive(dead, a_to_b, true);
    EXPECT_EQ(r.path(src, dst, flow), healthy);

    r.setEdgeDirAlive(dead, a_to_b, false);
    std::vector<NodeId> dead2 = r.path(src, dst, flow);
    EXPECT_EQ(dead2, dead1);
    for (size_t k = 0; k + 1 < dead2.size(); ++k)
        EXPECT_FALSE(dead2[k] == u && dead2[k + 1] == v);

    Router fresh(t);
    fresh.setEdgeDirAlive(dead, a_to_b, false);
    EXPECT_EQ(fresh.path(src, dst, flow), dead2);
    for (NodeId n : t.hosts())
        EXPECT_EQ(fresh.distance(n, dst), r.distance(n, dst)) << n;

    // Idempotent re-kill of an already-dead edge must not disturb the
    // cached fields (no epoch bump, same answers).
    r.setEdgeDirAlive(dead, a_to_b, false);
    EXPECT_EQ(r.path(src, dst, flow), dead2);
}

TEST(RoutingTest, UnreachableIsEmptyNotFatal)
{
    Topology t = Topology::star(2, 1);  // hosts 3 (leaf 1), 4 (leaf 2)
    Router r(t);
    // Sever the host 4 attachment in both directions.
    int e = t.neighbors(4)[0].edge;
    r.setEdgeDirAlive(e, true, false);
    r.setEdgeDirAlive(e, false, false);
    EXPECT_EQ(r.distance(3, 4), -1);
    EXPECT_TRUE(r.path(3, 4, 0).empty());
    EXPECT_THROW(r.path(3, 3, 0), UsageError);  // src == dst
}
