// Tests for the deterministic PRNG layer (an2/base/rng.h).
#include "an2/base/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace an2 {
namespace {

TEST(Xoshiro256Test, DeterministicForSameSeed)
{
    Xoshiro256 a(42);
    Xoshiro256 b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Xoshiro256Test, DifferentSeedsDiffer)
{
    Xoshiro256 a(1);
    Xoshiro256 b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next64() == b.next64())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Xoshiro256Test, CloneContinuesIdentically)
{
    Xoshiro256 a(7);
    for (int i = 0; i < 13; ++i)
        a.next64();
    auto b = a.clone();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b->next64());
}

TEST(RngTest, NextBelowStaysInRange)
{
    Xoshiro256 rng(3);
    for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 500; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(RngTest, NextBelowOneAlwaysZero)
{
    Xoshiro256 rng(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(RngTest, NextBelowRejectsZeroBound)
{
    Xoshiro256 rng(5);
    EXPECT_THROW(rng.nextBelow(0), InternalError);
}

TEST(RngTest, NextBelowUniformChiSquare)
{
    // Chi-square goodness of fit over 16 buckets; 99.9% critical value
    // for 15 dof is ~37.7.
    Xoshiro256 rng(11);
    constexpr int kBuckets = 16;
    constexpr int kSamples = 160000;
    std::vector<int> counts(kBuckets, 0);
    for (int i = 0; i < kSamples; ++i)
        ++counts[rng.nextBelow(kBuckets)];
    double expected = static_cast<double>(kSamples) / kBuckets;
    double chi2 = 0.0;
    for (int c : counts)
        chi2 += (c - expected) * (c - expected) / expected;
    EXPECT_LT(chi2, 37.7);
}

TEST(RngTest, NextInRangeInclusive)
{
    Xoshiro256 rng(17);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.nextInRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Xoshiro256 rng(19);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double x = rng.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases)
{
    Xoshiro256 rng(23);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBernoulli(0.0));
        EXPECT_TRUE(rng.nextBernoulli(1.0));
    }
}

TEST(RngTest, BernoulliRate)
{
    Xoshiro256 rng(29);
    int hits = 0;
    constexpr int kSamples = 100000;
    for (int i = 0; i < kSamples; ++i)
        hits += rng.nextBernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, PickWeightedRespectsWeights)
{
    Xoshiro256 rng(31);
    std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
    std::vector<int> counts(4, 0);
    constexpr int kSamples = 100000;
    for (int i = 0; i < kSamples; ++i)
        ++counts[rng.pickWeighted(weights)];
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[0] / static_cast<double>(kSamples), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(kSamples), 0.3, 0.01);
    EXPECT_NEAR(counts[3] / static_cast<double>(kSamples), 0.6, 0.01);
}

TEST(RngTest, PickWeightedIntMatchesDoubles)
{
    Xoshiro256 rng(37);
    std::vector<int> weights = {2, 0, 8};
    std::vector<int> counts(3, 0);
    constexpr int kSamples = 50000;
    for (int i = 0; i < kSamples; ++i)
        ++counts[rng.pickWeighted(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[0] / static_cast<double>(kSamples), 0.2, 0.015);
}

TEST(RngTest, PickWeightedRequiresPositiveTotal)
{
    Xoshiro256 rng(41);
    std::vector<double> zero = {0.0, 0.0};
    EXPECT_THROW(rng.pickWeighted(zero), UsageError);
}

TEST(RngTest, ShuffleIsPermutation)
{
    Xoshiro256 rng(43);
    std::vector<int> v(50);
    for (int i = 0; i < 50; ++i)
        v[static_cast<size_t>(i)] = i;
    auto sorted = v;
    rng.shuffle(v);
    EXPECT_NE(v, sorted);  // astronomically unlikely to be identity
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(RngTest, ShuffleUniformFirstElement)
{
    Xoshiro256 rng(47);
    std::vector<int> counts(4, 0);
    for (int trial = 0; trial < 40000; ++trial) {
        std::vector<int> v = {0, 1, 2, 3};
        rng.shuffle(v);
        ++counts[static_cast<size_t>(v[0])];
    }
    for (int c : counts)
        EXPECT_NEAR(c / 40000.0, 0.25, 0.01);
}

TEST(WeakLcgTest, ProducesVariedOutput)
{
    WeakLcg rng(1);
    std::set<uint64_t> seen;
    for (int i = 0; i < 100; ++i)
        seen.insert(rng.next64());
    EXPECT_GT(seen.size(), 50u);  // weak but not constant
}

TEST(WeakLcgTest, DeterministicAndClonable)
{
    WeakLcg a(9);
    auto b = a.clone();
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.next64(), b->next64());
}

TEST(SplitMix64Test, KnownSequenceProperties)
{
    uint64_t s1 = 0;
    uint64_t s2 = 0;
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
    EXPECT_EQ(s1, s2);
    EXPECT_NE(splitmix64(s1), splitmix64(s2) + 1);
}

}  // namespace
}  // namespace an2
