// Tests for the drifting-clock network simulator (an2/network/*):
// delivery, CBR pacing, Appendix B bounds, and multi-switch merging.
#include "an2/network/network.h"

#include <gtest/gtest.h>

#include <cmath>

#include "an2/cbr/timing.h"
#include "an2/matching/pim.h"

namespace an2 {
namespace {

std::unique_ptr<Matcher>
pim(uint64_t seed)
{
    PimConfig cfg;
    cfg.iterations = 4;
    cfg.seed = seed;
    return std::make_unique<PimMatcher>(cfg);
}

TEST(LocalClockTest, SlotTimesScaleWithRateError)
{
    LocalClock nominal(1000, 0.0);
    LocalClock fast(1000, 0.01);
    LocalClock slow(1000, -0.01);
    EXPECT_EQ(nominal.slotStart(100), 100'000);
    EXPECT_LT(fast.slotStart(100), 100'000);
    EXPECT_GT(slow.slotStart(100), 100'000);
    EXPECT_EQ(nominal.nextSlot(), 0);
    nominal.advance();
    EXPECT_EQ(nominal.nextSlot(), 1);
}

TEST(NetLinkTest, DeliversAfterLatency)
{
    NetLink link(500);
    Cell c;
    c.flow = 1;
    link.send(c, 1000);
    EXPECT_TRUE(link.deliverUpTo(1400).empty());
    auto arrived = link.deliverUpTo(1500);
    ASSERT_EQ(arrived.size(), 1u);
    EXPECT_EQ(link.inFlight(), 0);
    EXPECT_EQ(link.cellsCarried(), 1);
}

TEST(NetworkTest, VbrFlowDeliveredInOrder)
{
    NetworkConfig cfg;
    cfg.slot_ps = 1000;
    cfg.switch_frame_slots = 50;
    cfg.controller_padding = 2;
    Network net(cfg);
    NodeId src = net.addController(0.0, 1);
    NodeId sw = net.addSwitch(2, 0.0, pim(2));
    NodeId dst = net.addController(0.0, 3);
    net.connect(src, 0, sw, 0, 100);
    net.connect(sw, 1, dst, 0, 100);
    FlowId f = net.addVbrFlow({src, sw, dst}, 0.5);
    net.runFrames(100);

    const auto& stats = net.controller(dst).deliveryStats(f);
    EXPECT_GT(stats.delivered, 2000);
    EXPECT_EQ(stats.order_violations, 0);
    EXPECT_GT(stats.wall_latency_ps.mean(), 0.0);
}

TEST(NetworkTest, CbrFlowPacedAtReservation)
{
    NetworkConfig cfg;
    cfg.slot_ps = 1000;
    cfg.switch_frame_slots = 50;
    cfg.controller_padding = 2;
    Network net(cfg);
    NodeId src = net.addController(0.0, 1);
    NodeId sw = net.addSwitch(2, 0.0, pim(2));
    NodeId dst = net.addController(0.0, 3);
    net.connect(src, 0, sw, 0, 100);
    net.connect(sw, 1, dst, 0, 100);
    constexpr int kCellsPerFrame = 10;
    FlowId f = net.addCbrFlow({src, sw, dst}, kCellsPerFrame);
    ASSERT_NE(f, kNoFlow);

    constexpr int kFrames = 200;
    net.runFrames(kFrames);
    const auto& stats = net.controller(dst).deliveryStats(f);
    // Controller frames are slightly longer than switch frames, so the
    // source completes a bit fewer than kFrames frames.
    auto expected = static_cast<int64_t>(
        kFrames * kCellsPerFrame * 50.0 / 52.0);
    EXPECT_NEAR(static_cast<double>(stats.delivered),
                static_cast<double>(expected), kCellsPerFrame * 3.0);
    EXPECT_EQ(stats.order_violations, 0);
}

TEST(NetworkTest, CbrAdmissionRejectsOverCommit)
{
    NetworkConfig cfg;
    cfg.switch_frame_slots = 20;
    Network net(cfg);
    NodeId src = net.addController(0.0, 1);
    NodeId sw = net.addSwitch(2, 0.0, pim(2));
    NodeId dst = net.addController(0.0, 3);
    net.connect(src, 0, sw, 0, 100);
    net.connect(sw, 1, dst, 0, 100);
    EXPECT_NE(net.addCbrFlow({src, sw, dst}, 15), kNoFlow);
    EXPECT_EQ(net.addCbrFlow({src, sw, dst}, 10), kNoFlow);  // link full
    EXPECT_NE(net.addCbrFlow({src, sw, dst}, 5), kNoFlow);
}

TEST(NetworkTest, AppendixBLatencyAndBufferBoundsHold)
{
    // A 3-switch chain with maximally adversarial clocks: fast source
    // controller, alternating fast/slow switches, 0.5% tolerance.
    constexpr double kTol = 0.005;
    constexpr int kFrame = 50;
    constexpr PicoTime kSlotPs = 1000;
    constexpr PicoTime kLinkPs = 2000;
    NetworkConfig cfg;
    cfg.slot_ps = kSlotPs;
    cfg.switch_frame_slots = kFrame;
    cfg.controller_padding = minControllerPadding(kFrame, kTol);
    Network net(cfg);

    NodeId src = net.addController(+kTol, 1);
    NodeId s1 = net.addSwitch(2, -kTol, pim(2));
    NodeId s2 = net.addSwitch(2, +kTol, pim(3));
    NodeId s3 = net.addSwitch(2, -kTol, pim(4));
    NodeId dst = net.addController(-kTol, 5);
    net.connect(src, 0, s1, 0, kLinkPs);
    net.connect(s1, 1, s2, 0, kLinkPs);
    net.connect(s2, 1, s3, 0, kLinkPs);
    net.connect(s3, 1, dst, 0, kLinkPs);

    constexpr int kCellsPerFrame = 5;
    FlowId f = net.addCbrFlow({src, s1, s2, s3, dst}, kCellsPerFrame);
    ASSERT_NE(f, kNoFlow);
    net.runFrames(400);

    FrameTiming t = makeFrameTiming(
        kFrame, kFrame + cfg.controller_padding,
        static_cast<double>(kSlotPs), kTol, static_cast<double>(kLinkPs));
    constexpr int kHops = 3;

    const auto& stats = net.controller(dst).deliveryStats(f);
    ASSERT_GT(stats.delivered, 1000);
    EXPECT_EQ(stats.order_violations, 0);
    // Formula 3: adjusted latency bounded by 2p(F_s-max + l).
    EXPECT_LE(stats.adjusted_latency_ps.max(), latencyBound(t, kHops));

    // Formula 5: per-switch buffer occupancy bounded per cell/frame.
    double buf_bound = bufferBound(t, kHops) * kCellsPerFrame;
    double frames_bound = maxActiveFrames(t, kHops);
    for (NodeId sw_id : {s1, s2, s3}) {
        const auto& occ = net.netSwitch(sw_id).occupancy();
        auto it = occ.max_per_cbr_flow.find(f);
        ASSERT_NE(it, occ.max_per_cbr_flow.end());
        EXPECT_LE(it->second, std::ceil(buf_bound));
        EXPECT_GE(it->second, 1);
        // First displayed formula of B.2: consecutive active frames
        // (per cell class) are bounded.
        auto af = occ.max_active_frames.find(f);
        ASSERT_NE(af, occ.max_active_frames.end());
        EXPECT_LE(af->second, frames_bound);
        EXPECT_GE(af->second, 1);
    }
}

TEST(NetworkTest, TwoSourcesShareBottleneckRoughlyEqually)
{
    NetworkConfig cfg;
    cfg.slot_ps = 1000;
    cfg.switch_frame_slots = 50;
    Network net(cfg);
    NodeId a = net.addController(0.0, 1);
    NodeId b = net.addController(0.0, 2);
    NodeId sw = net.addSwitch(3, 0.0, pim(3));
    NodeId dst = net.addController(0.0, 4);
    net.connect(a, 0, sw, 0, 100);
    net.connect(b, 0, sw, 1, 100);
    net.connect(sw, 2, dst, 0, 100);
    FlowId fa = net.addVbrFlow({a, sw, dst}, 1.0);
    FlowId fb = net.addVbrFlow({b, sw, dst}, 1.0);
    net.runFrames(200);
    auto da = net.controller(dst).deliveryStats(fa).delivered;
    auto db = net.controller(dst).deliveryStats(fb).delivered;
    EXPECT_NEAR(static_cast<double>(da) / static_cast<double>(da + db),
                0.5, 0.05);
}

TEST(NetworkTest, PolicerDropsExcessCbrCells)
{
    // A misbehaving app attempts 15 cells/frame on a 10 cells/frame
    // reservation; the controller meter drops 5 per frame and the
    // network still carries exactly the reservation.
    NetworkConfig cfg;
    cfg.slot_ps = 1000;
    cfg.switch_frame_slots = 50;
    Network net2(cfg);
    NodeId src2 = net2.addController(0.0, 1);
    NodeId sw2 = net2.addSwitch(2, 0.0, pim(2));
    NodeId dst2 = net2.addController(0.0, 3);
    net2.connect(src2, 0, sw2, 0, 100);
    net2.connect(sw2, 1, dst2, 0, 100);
    // Wire the flow manually so we can set attempted > reserved.
    bool routed = net2.netSwitch(sw2).addRoute(500, 0, 1,
                                               TrafficClass::CBR, 10);
    ASSERT_TRUE(routed);
    net2.controller(src2).addCbrSource(500, 10, /*attempted=*/15);
    constexpr int kFrames = 100;
    net2.runFrames(kFrames);
    const auto& stats = net2.controller(dst2).deliveryStats(500);
    // Delivered at most the reservation per frame; drops ~5 per frame.
    EXPECT_LE(stats.delivered, kFrames * 10);
    EXPECT_GE(net2.controller(src2).policedDrops(500), (kFrames - 3) * 5);
}

TEST(NetworkTest, VbrBufferLimitDropsOnlyDatagrams)
{
    // Two saturated VBR sources converge on one output; a small VBR
    // buffer cap forces drops, while a CBR flow through the same switch
    // is untouched (its buffers are statically allocated).
    NetworkConfig cfg;
    cfg.slot_ps = 1000;
    cfg.switch_frame_slots = 50;
    Network net(cfg);
    NodeId a = net.addController(0.0, 1);
    NodeId b = net.addController(0.0, 2);
    NodeId sw = net.addSwitch(3, 0.0, pim(3));
    NodeId dst = net.addController(0.0, 4);
    net.connect(a, 0, sw, 0, 100);
    net.connect(b, 0, sw, 1, 100);
    net.connect(sw, 2, dst, 0, 100);
    net.netSwitch(sw).setVbrBufferLimit(16);

    FlowId cbr = net.addCbrFlow({a, sw, dst}, 10);
    ASSERT_NE(cbr, kNoFlow);
    FlowId v1 = net.addVbrFlow({a, sw, dst}, 0.8);
    FlowId v2 = net.addVbrFlow({b, sw, dst}, 1.0);
    net.runFrames(200);

    EXPECT_GT(net.netSwitch(sw).vbrDropped(), 0);
    const auto& cbr_stats = net.controller(dst).deliveryStats(cbr);
    EXPECT_EQ(cbr_stats.order_violations, 0);
    // CBR delivered its full reservation despite the VBR congestion.
    EXPECT_GT(cbr_stats.delivered, 190 * 10 * 50 / 52);
    // Both VBR flows still made progress.
    EXPECT_GT(net.controller(dst).deliveryStats(v1).delivered, 0);
    EXPECT_GT(net.controller(dst).deliveryStats(v2).delivered, 0);
}

TEST(NetworkTest, PathValidationErrors)
{
    Network net(NetworkConfig{});
    NodeId c0 = net.addController(0.0, 1);
    NodeId sw = net.addSwitch(2, 0.0, pim(2));
    NodeId c1 = net.addController(0.0, 2);
    net.connect(c0, 0, sw, 0, 100);
    net.connect(sw, 1, c1, 0, 100);
    // Path must start/end at controllers.
    EXPECT_THROW(net.addVbrFlow({sw, c1}, 0.5), UsageError);
    // Unconnected hop.
    EXPECT_THROW(net.addVbrFlow({c1, sw, c0}, 0.5), UsageError);
    // Too short.
    EXPECT_THROW(net.addVbrFlow({c0}, 0.5), UsageError);
}

TEST(NetworkTest, ConcentratorSharesOneSwitchPort)
{
    // §2.1: a concentrator card connects four slower workstations to a
    // single AN2 switch port. Modeled as a small 5-port switch: four
    // host-side ports, one uplink. All four hosts reach the sink and
    // share the uplink roughly equally.
    NetworkConfig cfg;
    cfg.slot_ps = 1000;
    cfg.switch_frame_slots = 50;
    Network net(cfg);
    std::vector<NodeId> hosts;
    for (int h = 0; h < 4; ++h)
        hosts.push_back(net.addController(0.0, 10 + h));
    NodeId concentrator = net.addSwitch(5, 0.0, pim(6));
    NodeId core = net.addSwitch(2, 0.0, pim(7));
    NodeId sink = net.addController(0.0, 20);
    for (int h = 0; h < 4; ++h)
        net.connect(hosts[static_cast<size_t>(h)], 0, concentrator, h, 100);
    net.connect(concentrator, 4, core, 0, 100);  // the shared uplink
    net.connect(core, 1, sink, 0, 100);

    std::vector<FlowId> flows;
    for (int h = 0; h < 4; ++h)
        flows.push_back(net.addVbrFlow(
            {hosts[static_cast<size_t>(h)], concentrator, core, sink},
            1.0));
    net.runFrames(400);

    std::vector<double> delivered;
    int64_t total = 0;
    for (FlowId f : flows) {
        auto d = net.controller(sink).deliveryStats(f).delivered;
        delivered.push_back(static_cast<double>(d));
        total += d;
    }
    // The uplink is the bottleneck: ~1 cell/slot total, split 4 ways.
    EXPECT_GT(total, 400 * 50 * 9 / 10);
    EXPECT_GT(jainFairnessIndex(delivered), 0.98);
}

TEST(NetworkTest, MeshTopologyRoutesFlowsOverDistinctPaths)
{
    // Four switches in a square; two flows take different sides of the
    // mesh to the same destination host, both delivered in order — the
    // "arbitrary topology" claim of §2.
    NetworkConfig cfg;
    cfg.slot_ps = 1000;
    cfg.switch_frame_slots = 50;
    Network net(cfg);
    NodeId src = net.addController(0.0, 1);
    NodeId dst = net.addController(0.0, 2);
    NodeId nw = net.addSwitch(3, +0.0001, pim(3));
    NodeId ne = net.addSwitch(3, -0.0001, pim(4));
    NodeId sw_ = net.addSwitch(3, +0.0002, pim(5));
    NodeId se = net.addSwitch(3, -0.0002, pim(6));
    // src feeds the NW corner; dst hangs off the SE corner.
    net.connect(src, 0, nw, 0, 100);
    net.connect(nw, 1, ne, 0, 100);   // top edge
    net.connect(nw, 2, sw_, 0, 100);  // left edge
    net.connect(ne, 1, se, 0, 100);   // right edge
    net.connect(sw_, 1, se, 1, 100);  // bottom edge
    net.connect(se, 2, dst, 0, 100);

    // Both flows originate at src (sharing its link) but split at NW.
    FlowId top = net.addVbrFlow({src, nw, ne, se, dst}, 0.4);
    FlowId bottom = net.addVbrFlow({src, nw, sw_, se, dst}, 0.4);
    net.runFrames(300);

    const Controller& sink = net.controller(dst);
    EXPECT_GT(sink.deliveryStats(top).delivered, 4000);
    EXPECT_GT(sink.deliveryStats(bottom).delivered, 4000);
    EXPECT_EQ(sink.deliveryStats(top).order_violations, 0);
    EXPECT_EQ(sink.deliveryStats(bottom).order_violations, 0);
}

TEST(NetworkTest, RandomTreeFuzzDeliversEverythingInOrder)
{
    // Fuzz: a random binary-ish tree of switches with hosts at the
    // leaves, random flows leaf-to-leaf via the root. Invariants: every
    // flow makes progress, zero reordering, no crashes.
    Xoshiro256 rng(99);
    for (int trial = 0; trial < 5; ++trial) {
        NetworkConfig cfg;
        cfg.slot_ps = 1000;
        cfg.switch_frame_slots = 40;
        Network net(cfg);

        // Chain of switches with one host on each (a degenerate tree of
        // random depth), plus a hub host at the far end.
        int depth = 2 + static_cast<int>(rng.nextBelow(3));
        std::vector<NodeId> switches;
        std::vector<NodeId> hosts;
        for (int d = 0; d < depth; ++d) {
            double err = (rng.nextDouble() - 0.5) * 2e-4;
            switches.push_back(net.addSwitch(
                3, err, pim(200 + static_cast<uint64_t>(trial * 10 + d))));
            hosts.push_back(
                net.addController(0.0, 300 + static_cast<uint64_t>(d)));
            net.connect(hosts.back(), 0, switches.back(), 0, 100);
        }
        NodeId hub = net.addController(0.0, 400);
        for (int d = 0; d + 1 < depth; ++d)
            net.connect(switches[static_cast<size_t>(d)], 2,
                        switches[static_cast<size_t>(d + 1)], 1, 100);
        net.connect(switches.back(), 2, hub, 0, 100);

        std::vector<FlowId> flows;
        for (int d = 0; d < depth; ++d) {
            std::vector<NodeId> path;
            path.push_back(hosts[static_cast<size_t>(d)]);
            for (int k = d; k < depth; ++k)
                path.push_back(switches[static_cast<size_t>(k)]);
            path.push_back(hub);
            flows.push_back(net.addVbrFlow(path, 0.3));
        }
        net.runFrames(150);
        for (FlowId f : flows) {
            const auto& st = net.controller(hub).deliveryStats(f);
            EXPECT_GT(st.delivered, 500) << "trial " << trial;
            EXPECT_EQ(st.order_violations, 0) << "trial " << trial;
        }
    }
}

TEST(NetworkTest, TwoCbrFlowsShareASwitchUnderDrift)
{
    // Two reservations with different rates cross the same drifting
    // switch; each must be paced at its own rate with no reordering.
    constexpr double kTol = 0.002;
    NetworkConfig cfg;
    cfg.slot_ps = 1000;
    cfg.switch_frame_slots = 60;
    cfg.controller_padding = minControllerPadding(60, kTol);
    Network net(cfg);
    NodeId a = net.addController(+kTol, 1);
    NodeId b = net.addController(-kTol, 2);
    NodeId sw = net.addSwitch(3, +kTol, pim(7));
    NodeId dst = net.addController(-kTol, 3);
    net.connect(a, 0, sw, 0, 100);
    net.connect(b, 0, sw, 1, 100);
    net.connect(sw, 2, dst, 0, 100);
    FlowId fa = net.addCbrFlow({a, sw, dst}, 20);
    FlowId fb = net.addCbrFlow({b, sw, dst}, 30);
    ASSERT_NE(fa, kNoFlow);
    ASSERT_NE(fb, kNoFlow);
    EXPECT_EQ(net.addCbrFlow({a, sw, dst}, 15), kNoFlow);  // output full

    constexpr int kFrames = 300;
    net.runFrames(kFrames);
    const Controller& sink = net.controller(dst);
    double ratio =
        static_cast<double>(sink.deliveryStats(fb).delivered) /
        static_cast<double>(sink.deliveryStats(fa).delivered);
    EXPECT_NEAR(ratio, 1.5, 0.05);  // 30 : 20 cells per frame
    EXPECT_EQ(sink.deliveryStats(fa).order_violations, 0);
    EXPECT_EQ(sink.deliveryStats(fb).order_violations, 0);
}

TEST(NetworkTest, TypedAccessorsValidateKind)
{
    Network net(NetworkConfig{});
    NodeId c0 = net.addController(0.0, 1);
    NodeId sw = net.addSwitch(2, 0.0, pim(2));
    EXPECT_THROW(net.controller(sw), UsageError);
    EXPECT_THROW(net.netSwitch(c0), UsageError);
    EXPECT_NO_THROW(net.controller(c0));
    EXPECT_NO_THROW(net.netSwitch(sw));
}

}  // namespace
}  // namespace an2
