// Tests for the self-routing fabrics (an2/fabric/batcher_banyan.h):
// banyan self-routing, internal blocking, Batcher sorting, and the
// non-blocking theorem behind Starlite/Sunshine-style switches (§2.2).
#include "an2/fabric/batcher_banyan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "an2/base/rng.h"

namespace an2 {
namespace {

std::vector<FabricCell>
makeCells(const std::vector<std::pair<PortId, PortId>>& pairs)
{
    std::vector<FabricCell> cells;
    int64_t tag = 0;
    for (auto [i, j] : pairs)
        cells.push_back({i, j, tag++});
    return cells;
}

TEST(PowerOfTwoTest, Classification)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(-4));
    EXPECT_FALSE(isPowerOfTwo(12));
}

TEST(BanyanTest, RejectsNonPowerOfTwo)
{
    EXPECT_THROW(BanyanNetwork(6), UsageError);
    EXPECT_THROW(BanyanNetwork(0), UsageError);
}

TEST(BanyanTest, SingleCellSelfRoutesFromAnywhere)
{
    for (int n : {2, 4, 8, 16, 32}) {
        BanyanNetwork net(n);
        for (PortId i = 0; i < n; ++i) {
            for (PortId j = 0; j < n; ++j) {
                FabricResult r = net.route(makeCells({{i, j}}));
                ASSERT_EQ(r.delivered.size(), 1u)
                    << "n=" << n << " " << i << "->" << j;
                EXPECT_EQ(r.delivered[0].output, j);
                EXPECT_EQ(r.conflicts, 0);
            }
        }
    }
}

TEST(BanyanTest, StageCountIsLog2N)
{
    EXPECT_EQ(BanyanNetwork(16).stages(), 4);
    EXPECT_EQ(BanyanNetwork(2).stages(), 1);
}

TEST(BanyanTest, IdentityPermutationPasses)
{
    BanyanNetwork net(8);
    std::vector<std::pair<PortId, PortId>> pairs;
    for (PortId p = 0; p < 8; ++p)
        pairs.emplace_back(p, p);
    FabricResult r = net.route(makeCells(pairs));
    EXPECT_EQ(r.delivered.size(), 8u);
    EXPECT_EQ(r.conflicts, 0);
}

TEST(BanyanTest, SomePermutationsBlockInternally)
{
    // The defining weakness (§2.2): even with distinct outputs, many
    // permutations collide inside the fabric.
    BanyanNetwork net(8);
    Xoshiro256 rng(5);
    std::vector<PortId> perm(8);
    std::iota(perm.begin(), perm.end(), 0);
    int blocked_permutations = 0;
    constexpr int kTrials = 300;
    for (int t = 0; t < kTrials; ++t) {
        rng.shuffle(perm);
        std::vector<std::pair<PortId, PortId>> pairs;
        for (PortId p = 0; p < 8; ++p)
            pairs.emplace_back(p, perm[static_cast<size_t>(p)]);
        FabricResult r = net.route(makeCells(pairs));
        EXPECT_EQ(r.delivered.size() + r.blocked.size(), 8u);
        if (!r.blocked.empty())
            ++blocked_permutations;
    }
    // The vast majority of random permutations block an 8x8 banyan.
    EXPECT_GT(blocked_permutations, kTrials / 2);
}

TEST(BanyanTest, DuplicateInputRejected)
{
    BanyanNetwork net(4);
    EXPECT_THROW(net.route(makeCells({{1, 2}, {1, 3}})), UsageError);
}

TEST(BanyanTest, DeliveredPlusBlockedConservesCells)
{
    BanyanNetwork net(16);
    Xoshiro256 rng(6);
    for (int t = 0; t < 200; ++t) {
        std::vector<std::pair<PortId, PortId>> pairs;
        for (PortId i = 0; i < 16; ++i)
            if (rng.nextBernoulli(0.6))
                pairs.emplace_back(i, static_cast<PortId>(
                                          rng.nextBelow(16)));
        FabricResult r = net.route(makeCells(pairs));
        EXPECT_EQ(r.delivered.size() + r.blocked.size(), pairs.size());
        for (const FabricCell& c : r.delivered) {
            // Delivered cells really carry their own destination.
            EXPECT_GE(c.output, 0);
            EXPECT_LT(c.output, 16);
        }
    }
}

TEST(BatcherTest, SortsByDestination)
{
    BatcherSorter sorter(8);
    auto cells = makeCells({{0, 7}, {1, 2}, {3, 5}, {6, 0}, {7, 3}});
    auto sorted = sorter.sort(cells);
    ASSERT_EQ(sorted.size(), 5u);
    for (size_t k = 0; k < sorted.size(); ++k) {
        EXPECT_EQ(sorted[k].input, static_cast<PortId>(k));  // concentrated
        if (k > 0)
            EXPECT_LE(sorted[k - 1].output, sorted[k].output);
    }
}

TEST(BatcherTest, TagsSurviveSorting)
{
    BatcherSorter sorter(8);
    auto cells = makeCells({{2, 6}, {5, 1}});
    auto sorted = sorter.sort(cells);
    ASSERT_EQ(sorted.size(), 2u);
    EXPECT_EQ(sorted[0].output, 1);
    EXPECT_EQ(sorted[0].tag, 1);  // tag of the {5,1} cell
    EXPECT_EQ(sorted[1].tag, 0);
}

TEST(BatcherTest, SortsDuplicateDestinations)
{
    BatcherSorter sorter(8);
    auto cells = makeCells({{0, 3}, {4, 3}, {7, 3}});
    auto sorted = sorter.sort(cells);
    ASSERT_EQ(sorted.size(), 3u);
    for (const auto& c : sorted)
        EXPECT_EQ(c.output, 3);
}

TEST(BatcherTest, MatchesStdSortOnRandomInputs)
{
    Xoshiro256 rng(7);
    for (int n : {4, 16, 64}) {
        BatcherSorter sorter(n);
        for (int t = 0; t < 50; ++t) {
            std::vector<std::pair<PortId, PortId>> pairs;
            for (PortId i = 0; i < n; ++i)
                if (rng.nextBernoulli(0.5))
                    pairs.emplace_back(i, static_cast<PortId>(
                                              rng.nextBelow(
                                                  static_cast<uint64_t>(n))));
            auto sorted = sorter.sort(makeCells(pairs));
            std::vector<PortId> dests;
            for (const auto& p : pairs)
                dests.push_back(p.second);
            std::sort(dests.begin(), dests.end());
            ASSERT_EQ(sorted.size(), dests.size());
            for (size_t k = 0; k < dests.size(); ++k)
                EXPECT_EQ(sorted[k].output, dests[k]);
        }
    }
}

TEST(BatcherBanyanTest, NeverBlocksOnDistinctOutputs)
{
    // The §2.2 theorem: sorted + concentrated + distinct outputs =>
    // conflict-free through the banyan. Property-swept over random
    // partial matchings of several sizes.
    Xoshiro256 rng(8);
    for (int n : {4, 8, 16, 32}) {
        BatcherBanyanFabric fabric(n);
        for (int t = 0; t < 100; ++t) {
            std::vector<PortId> outs(static_cast<size_t>(n));
            std::iota(outs.begin(), outs.end(), 0);
            rng.shuffle(outs);
            std::vector<std::pair<PortId, PortId>> pairs;
            for (PortId i = 0; i < n; ++i)
                if (rng.nextBernoulli(0.7))
                    pairs.emplace_back(i, outs[static_cast<size_t>(i)]);
            FabricResult r = fabric.route(makeCells(pairs));
            EXPECT_EQ(r.delivered.size(), pairs.size());
            EXPECT_EQ(r.conflicts, 0);
            // Every injected cell arrived, identified by tag.
            std::set<int64_t> tags;
            for (const FabricCell& c : r.delivered)
                tags.insert(c.tag);
            EXPECT_EQ(tags.size(), pairs.size());
        }
    }
}

TEST(BatcherBanyanTest, FullPermutationsAllPass)
{
    BatcherBanyanFabric fabric(16);
    Xoshiro256 rng(9);
    std::vector<PortId> perm(16);
    std::iota(perm.begin(), perm.end(), 0);
    for (int t = 0; t < 200; ++t) {
        rng.shuffle(perm);
        std::vector<std::pair<PortId, PortId>> pairs;
        for (PortId i = 0; i < 16; ++i)
            pairs.emplace_back(i, perm[static_cast<size_t>(i)]);
        FabricResult r = fabric.route(makeCells(pairs));
        EXPECT_EQ(r.delivered.size(), 16u);
    }
}

TEST(BatcherBanyanTest, DuplicateOutputsRejected)
{
    BatcherBanyanFabric fabric(8);
    EXPECT_THROW(fabric.route(makeCells({{0, 3}, {1, 3}})), UsageError);
}

}  // namespace
}  // namespace an2
