// Tests for network admission control (an2/cbr/admission.h).
#include "an2/cbr/admission.h"

#include <gtest/gtest.h>

namespace an2 {
namespace {

TEST(AdmissionTest, LinksStartEmpty)
{
    AdmissionController adm(100);
    LinkId a = adm.addLink();
    EXPECT_EQ(adm.numLinks(), 1);
    EXPECT_EQ(adm.committed(a), 0);
    EXPECT_EQ(adm.available(a), 100);
}

TEST(AdmissionTest, AdmitCommitsEveryLinkOnPath)
{
    AdmissionController adm(10);
    LinkId a = adm.addLink();
    LinkId b = adm.addLink();
    LinkId c = adm.addLink();
    EXPECT_TRUE(adm.admit({a, b}, 4));
    EXPECT_EQ(adm.committed(a), 4);
    EXPECT_EQ(adm.committed(b), 4);
    EXPECT_EQ(adm.committed(c), 0);
}

TEST(AdmissionTest, RejectionLeavesNoPartialCommit)
{
    AdmissionController adm(10);
    LinkId a = adm.addLink();
    LinkId b = adm.addLink();
    ASSERT_TRUE(adm.admit({b}, 8));
    EXPECT_FALSE(adm.admit({a, b}, 4));  // b lacks capacity
    EXPECT_EQ(adm.committed(a), 0);      // a untouched
}

TEST(AdmissionTest, CanAdmitMatchesAdmit)
{
    AdmissionController adm(5);
    LinkId a = adm.addLink();
    EXPECT_TRUE(adm.canAdmit({a}, 5));
    EXPECT_FALSE(adm.canAdmit({a}, 6));
}

TEST(AdmissionTest, ReleaseRestoresCapacity)
{
    AdmissionController adm(10);
    LinkId a = adm.addLink();
    LinkId b = adm.addLink();
    ASSERT_TRUE(adm.admit({a, b}, 10));
    EXPECT_FALSE(adm.canAdmit({a}, 1));
    adm.release({a, b}, 6);
    EXPECT_EQ(adm.available(a), 6);
    EXPECT_TRUE(adm.admit({a, b}, 6));
}

TEST(AdmissionTest, ReleaseMoreThanCommittedRejected)
{
    AdmissionController adm(10);
    LinkId a = adm.addLink();
    adm.admit({a}, 3);
    EXPECT_THROW(adm.release({a}, 4), UsageError);
    EXPECT_EQ(adm.committed(a), 3);  // unchanged
}

TEST(AdmissionTest, UnknownLinkRejected)
{
    AdmissionController adm(10);
    EXPECT_THROW(adm.committed(0), UsageError);
    EXPECT_THROW(adm.canAdmit({3}, 1), UsageError);
}

TEST(AdmissionTest, EmptyPathTriviallyAdmits)
{
    AdmissionController adm(10);
    EXPECT_TRUE(adm.admit({}, 5));
}

TEST(AdmissionTest, HundredPercentReservable)
{
    // §4: the allocation criterion allows 100% of link bandwidth.
    AdmissionController adm(1000);
    LinkId a = adm.addLink();
    EXPECT_TRUE(adm.admit({a}, 1000));
    EXPECT_EQ(adm.available(a), 0);
}

}  // namespace
}  // namespace an2
