// Tests for the flight recorder (an2/obs/blackbox): the base-layer
// panic hook, fault-triggered post-mortems with a byte-exact golden
// an2.blackbox.v1 document, dump structure, and hook save/restore.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "an2/base/error.h"
#include "an2/fault/fault_plan.h"
#include "an2/fault/injector.h"
#include "an2/matching/pim.h"
#include "an2/obs/blackbox.h"
#include "an2/obs/recorder.h"
#include "an2/sim/iq_switch.h"
#include "an2/sim/traffic.h"

#ifndef AN2_TEST_GOLDEN_DIR
#define AN2_TEST_GOLDEN_DIR "tests/golden"
#endif

#ifdef AN2_OBS_DISABLED
#define SKIP_IF_OBS_DISABLED() \
    GTEST_SKIP() << "obs layer compiled out (AN2_OBS_DISABLED)"
#else
#define SKIP_IF_OBS_DISABLED() (void)0
#endif

namespace an2::obs {
namespace {

// ---------------------------------------------------------------------------
// The panic hook itself

struct HookSpy
{
    int calls = 0;
    std::string last_msg;

    static void fire(void* ctx, const std::string& msg)
    {
        auto* self = static_cast<HookSpy*>(ctx);
        ++self->calls;
        self->last_msg = msg;
    }
};

TEST(PanicHookTest, HookSeesTheMessageBeforeTheThrow)
{
    HookSpy spy;
    PanicHook prev = setPanicHook(&HookSpy::fire, &spy);
    EXPECT_THROW(AN2_PANIC("hooked failure " << 42), InternalError);
    setPanicHook(prev, nullptr);
    EXPECT_EQ(spy.calls, 1);
    EXPECT_NE(spy.last_msg.find("hooked failure 42"), std::string::npos);
}

TEST(PanicHookTest, SetReturnsPreviousHookForRestore)
{
    HookSpy outer;
    HookSpy inner;
    PanicHook prev0 = setPanicHook(&HookSpy::fire, &outer);
    void* prev_ctx = nullptr;
    PanicHook prev1 = setPanicHook(&HookSpy::fire, &inner, &prev_ctx);
    EXPECT_EQ(prev1, &HookSpy::fire);
    EXPECT_EQ(prev_ctx, &outer);
    // Restore the outer hook; the next panic reaches it, not inner.
    setPanicHook(prev1, prev_ctx);
    EXPECT_THROW(AN2_PANIC("after restore"), InternalError);
    setPanicHook(prev0, nullptr);
    EXPECT_EQ(outer.calls, 1);
    EXPECT_EQ(inner.calls, 0);
}

TEST(PanicHookTest, FatalErrorsDoNotFireTheHook)
{
    HookSpy spy;
    PanicHook prev = setPanicHook(&HookSpy::fire, &spy);
    EXPECT_THROW(AN2_FATAL("usage, not a bug"), UsageError);
    setPanicHook(prev, nullptr);
    EXPECT_EQ(spy.calls, 0);
}

// ---------------------------------------------------------------------------
// Blackbox triggers

TEST(BlackboxTest, PanicTriggersADumpBeforeUnwind)
{
    Recorder rec;
    rec.add(Counter::CellsEnqueued, 7);
    Blackbox bb(rec);
    EXPECT_THROW(AN2_PANIC("invariant blew up"), InternalError);
    EXPECT_EQ(bb.dumps(), 1);
    const std::string& doc = bb.lastDump();
    EXPECT_NE(doc.find("\"schema\": \"an2.blackbox.v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("invariant blew up"), std::string::npos);
    EXPECT_EQ(rec.counter(Counter::BlackboxDumps), 1);
}

TEST(BlackboxTest, DestructorRestoresThePreviousHook)
{
    HookSpy spy;
    PanicHook prev = setPanicHook(&HookSpy::fire, &spy);
    Recorder rec;
    {
        Blackbox bb(rec);
        (void)bb;
    }
    // With the blackbox gone, the spy is the hook again.
    EXPECT_THROW(AN2_PANIC("post-blackbox"), InternalError);
    setPanicHook(prev, nullptr);
    EXPECT_EQ(spy.calls, 1);
    EXPECT_EQ(rec.counter(Counter::BlackboxDumps), 0);
}

TEST(BlackboxTest, CounterDeltasAreSinceBaseline)
{
    Recorder rec;
    rec.add(Counter::CellsEnqueued, 100);
    BlackboxConfig cfg;
    cfg.arm_panic_hook = false;
    Blackbox bb(rec, nullptr, cfg);
    rec.add(Counter::CellsEnqueued, 5);
    bb.dump("manual", 9);
    // The absolute section reports 105, the delta section only the 5
    // accumulated after construction; untouched counters are omitted
    // from the deltas.
    EXPECT_NE(bb.lastDump().find("\"cells_enqueued\": 105"),
              std::string::npos);
    size_t deltas = bb.lastDump().find("\"counter_deltas\": {");
    ASSERT_NE(deltas, std::string::npos);
    size_t deltas_end = bb.lastDump().find('}', deltas);
    std::string delta_body =
        bb.lastDump().substr(deltas, deltas_end - deltas);
    EXPECT_NE(delta_body.find("\"cells_enqueued\": 5"), std::string::npos);
    EXPECT_EQ(delta_body.find("cells_dequeued"), std::string::npos);
    bb.rebaseline();
    bb.dump("manual again", 10);
    EXPECT_EQ(bb.lastDump().find("\"cells_enqueued\": 5"),
              std::string::npos);
}

/** Drive a seeded faulted run: 4x4 PIM switch, uniform load, the plan's
    port death dumps through `bb` mid-run. */
void
runFaulted(Recorder& rec, Blackbox& bb, InputQueuedSwitch& sw,
           const std::string& plan_spec, int slots)
{
    fault::FaultPlan plan = fault::FaultPlan::parse(plan_spec);
    fault::FaultInjector injector(sw.size(), plan, /*seed=*/77);
    injector.addListener(&bb);
    UniformTraffic traffic(sw.size(), 0.6, /*seed=*/19);
    attach(&rec);
    std::vector<Cell> arrivals;
    for (SlotTime slot = 0; slot < slots; ++slot) {
        injector.beginSlot(slot, &sw);
        arrivals.clear();
        traffic.generate(slot, arrivals);
        for (const Cell& c : arrivals)
            if (injector.classifyArrival(c) ==
                fault::FaultInjector::Verdict::Deliver)
                sw.acceptCell(c);
        const std::vector<Cell>& departed = sw.runSlot(slot);
        for (const Cell& c : departed)
            rec.cellDelivered(c, slot);
    }
    detach();
}

TEST(BlackboxTest, GoldenPortDeathDump)
{
    SKIP_IF_OBS_DISABLED();
    Recorder rec(RecorderConfig{
        .trace_capacity = 512, .ports = 4, .track_latency = true});
    InputQueuedSwitch sw(IqSwitchConfig{.n = 4},
                         std::make_unique<PimMatcher>(
                             PimConfig{.iterations = 4, .seed = 13}));
    BlackboxConfig cfg;
    cfg.max_events = 64;
    Blackbox bb(rec, &sw, cfg);
    runFaulted(rec, bb, sw, "out_down(2)@30", /*slots=*/40);

    ASSERT_EQ(bb.dumps(), 1);
    const std::string& doc = bb.lastDump();

    const std::string path =
        std::string(AN2_TEST_GOLDEN_DIR) + "/blackbox_4x4_portdown.json";
    if (std::getenv("AN2_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << doc;
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden " << path
        << " (run with AN2_REGEN_GOLDEN=1 to create it)";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(doc, golden.str())
        << "an2.blackbox.v1 output changed; if intentional, regenerate "
           "with AN2_REGEN_GOLDEN=1";
}

TEST(BlackboxTest, FaultDumpStructure)
{
    SKIP_IF_OBS_DISABLED();
    Recorder rec(RecorderConfig{
        .trace_capacity = 512, .ports = 4, .track_latency = true});
    InputQueuedSwitch sw(IqSwitchConfig{.n = 4},
                         std::make_unique<PimMatcher>(
                             PimConfig{.iterations = 4, .seed = 13}));
    BlackboxConfig cfg;
    cfg.max_events = 64;
    Blackbox bb(rec, &sw, cfg);
    runFaulted(rec, bb, sw, "out_down(2)@30,out_up(2)@35", /*slots=*/40);

    // out_up is not a death; only the down event dumps.
    EXPECT_EQ(bb.dumps(), 1);
    const std::string& doc = bb.lastDump();
    EXPECT_NE(doc.find("\"reason\": \"fault: output port 2 down\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"slot\": 30"), std::string::npos);
    // Switch state: port masks (output 2 dead at dump time), the VOQ
    // heatmap (4 rows), and the backlog vector.
    EXPECT_NE(doc.find("\"live_outputs\": [\n    1,\n    1,\n    0,\n"
                       "    1\n  ]"),
              std::string::npos);
    EXPECT_NE(doc.find("\"live_inputs\": [\n    1,\n    1,\n    1,\n"
                       "    1\n  ]"),
              std::string::npos);
    EXPECT_NE(doc.find("\"voq\": ["), std::string::npos);
    EXPECT_NE(doc.find("\"output_backlog\": ["), std::string::npos);
    // Telemetry sections ride along when enabled.
    EXPECT_NE(doc.find("\"latency\": {"), std::string::npos);
    EXPECT_NE(doc.find("\"events\": ["), std::string::npos);
    EXPECT_NE(doc.find("\"type\": \"fault\""), std::string::npos);
    EXPECT_EQ(rec.counter(Counter::BlackboxDumps), 1);
}

TEST(BlackboxTest, DumpOnFaultCanBeDisarmed)
{
    SKIP_IF_OBS_DISABLED();
    Recorder rec(RecorderConfig{.ports = 4});
    InputQueuedSwitch sw(IqSwitchConfig{.n = 4},
                         std::make_unique<PimMatcher>(
                             PimConfig{.iterations = 4, .seed = 13}));
    BlackboxConfig cfg;
    cfg.dump_on_fault = false;
    cfg.arm_panic_hook = false;
    Blackbox bb(rec, &sw, cfg);
    runFaulted(rec, bb, sw, "out_down(2)@30", /*slots=*/40);
    EXPECT_EQ(bb.dumps(), 0);
    EXPECT_EQ(bb.lastDump(), "");
}

TEST(BlackboxTest, DumpWritesConfiguredFile)
{
    Recorder rec;
    const std::string path = ::testing::TempDir() + "an2_blackbox.json";
    BlackboxConfig cfg;
    cfg.arm_panic_hook = false;
    cfg.path = path;
    Blackbox bb(rec, nullptr, cfg);
    bb.dump("file check", 3);
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "dump did not write " << path;
    std::ostringstream body;
    body << in.rdbuf();
    EXPECT_EQ(body.str(), bb.lastDump());
    std::remove(path.c_str());
}

}  // namespace
}  // namespace an2::obs
