// Tests for multicast PIM (an2/matching/multicast.h).
#include "an2/matching/multicast.h"

#include <gtest/gtest.h>

#include <set>

#include "an2/base/error.h"

namespace an2 {
namespace {

MulticastRequest
req(PortId input, std::vector<PortId> outputs)
{
    return {input, std::move(outputs)};
}

/** No output may be won by two different requests. */
void
expectConflictFree(const MulticastMatch& m, int n)
{
    std::vector<int> owners(static_cast<size_t>(n), 0);
    for (const auto& won : m.won)
        for (PortId j : won)
            ++owners[static_cast<size_t>(j)];
    for (int o : owners)
        EXPECT_LE(o, 1);
}

TEST(MulticastPimTest, SingleRequestWinsWholeFanout)
{
    MulticastPim pim(8);
    auto m = pim.match({req(2, {0, 3, 7})});
    ASSERT_EQ(m.won.size(), 1u);
    EXPECT_EQ(m.won[0], (std::vector<PortId>{0, 3, 7}));
    EXPECT_EQ(m.deliveries, 3);
    EXPECT_EQ(m.completed, 1);
}

TEST(MulticastPimTest, DisjointFanoutsAllComplete)
{
    MulticastPim pim(8);
    auto m = pim.match({req(0, {0, 1}), req(1, {2, 3}), req(2, {4, 5, 6})});
    EXPECT_EQ(m.completed, 3);
    EXPECT_EQ(m.deliveries, 7);
    expectConflictFree(m, 8);
}

TEST(MulticastPimTest, SplittingSharesContendedOutput)
{
    // Two broadcasts to the same pair of outputs: with splitting, both
    // outputs are claimed every slot (possibly by different inputs).
    MulticastPimConfig cfg;
    cfg.fanout_splitting = true;
    cfg.seed = 3;
    MulticastPim pim(4, cfg);
    int total_deliveries = 0;
    for (int t = 0; t < 500; ++t) {
        auto m = pim.match({req(0, {1, 2}), req(3, {1, 2})});
        expectConflictFree(m, 4);
        EXPECT_EQ(m.deliveries, 2);  // both outputs always served
        total_deliveries += m.deliveries;
    }
    EXPECT_EQ(total_deliveries, 1000);
}

TEST(MulticastPimTest, NoSplittingIsAllOrNothing)
{
    MulticastPimConfig cfg;
    cfg.fanout_splitting = false;
    cfg.iterations = 6;
    cfg.seed = 4;
    MulticastPim pim(4, cfg);
    int completed_slots = 0;
    for (int t = 0; t < 500; ++t) {
        auto m = pim.match({req(0, {1, 2}), req(3, {1, 2})});
        expectConflictFree(m, 4);
        // All-or-nothing: a transmission carries the whole fanout or
        // nothing; at most one of the two identical fanouts can win.
        EXPECT_LE(m.completed, 1);
        for (const auto& won : m.won)
            EXPECT_TRUE(won.empty() || won.size() == 2u);
        if (m.completed == 1)
            ++completed_slots;
    }
    // A tie (both grants split across the rivals) can survive all
    // iterations with probability 2^-6 per slot, so ~98% succeed.
    EXPECT_GT(completed_slots, 450);
}

TEST(MulticastPimTest, NoSplittingWithdrawalFreesOutputsForRivals)
{
    // Request A wants {0,1}; B wants {1,2}; C wants {2,3}. At most two
    // can complete (A and C); B conflicts with both. The iterative
    // lock/withdraw protocol should frequently complete two requests.
    MulticastPimConfig cfg;
    cfg.fanout_splitting = false;
    cfg.iterations = 4;
    cfg.seed = 5;
    MulticastPim pim(4, cfg);
    int both = 0;
    for (int t = 0; t < 2000; ++t) {
        auto m = pim.match(
            {req(0, {0, 1}), req(1, {1, 2}), req(2, {2, 3})});
        expectConflictFree(m, 4);
        EXPECT_GE(m.completed, 1);
        if (m.completed == 2)
            ++both;
    }
    EXPECT_GT(both, 500);
}

TEST(MulticastPimTest, SplittingDeliversAtLeastAsMuchAsNoSplitting)
{
    MulticastPimConfig split_cfg;
    split_cfg.fanout_splitting = true;
    split_cfg.seed = 6;
    MulticastPimConfig atomic_cfg;
    atomic_cfg.fanout_splitting = false;
    atomic_cfg.seed = 6;
    MulticastPim split(8, split_cfg);
    MulticastPim atomic(8, atomic_cfg);
    Xoshiro256 rng(7);
    int64_t split_total = 0;
    int64_t atomic_total = 0;
    for (int t = 0; t < 400; ++t) {
        std::vector<MulticastRequest> reqs;
        for (PortId i = 0; i < 8; ++i) {
            if (!rng.nextBernoulli(0.7))
                continue;
            std::set<PortId> outs;
            auto fanout = 1 + rng.nextBelow(4);
            while (outs.size() < fanout)
                outs.insert(static_cast<PortId>(rng.nextBelow(8)));
            reqs.push_back(req(i, {outs.begin(), outs.end()}));
        }
        if (reqs.empty())
            continue;
        split_total += split.match(reqs).deliveries;
        atomic_total += atomic.match(reqs).deliveries;
    }
    EXPECT_GT(split_total, atomic_total);
}

TEST(MulticastPimTest, BroadcastStormPartitionsOutputs)
{
    // Every input broadcasts to every output; with splitting, all N
    // outputs are served each slot, spread across inputs over time.
    constexpr int kN = 4;
    MulticastPimConfig cfg;
    cfg.seed = 8;
    MulticastPim pim(kN, cfg);
    std::vector<MulticastRequest> reqs;
    for (PortId i = 0; i < kN; ++i)
        reqs.push_back(req(i, {0, 1, 2, 3}));
    std::vector<int64_t> per_input(kN, 0);
    for (int t = 0; t < 4000; ++t) {
        auto m = pim.match(reqs);
        EXPECT_EQ(m.deliveries, kN);
        for (size_t r = 0; r < m.won.size(); ++r)
            per_input[r] += static_cast<int64_t>(m.won[r].size());
    }
    for (int64_t p : per_input)
        EXPECT_NEAR(static_cast<double>(p), 4000.0, 400.0);
}

TEST(MulticastPimTest, InvalidRequestsRejected)
{
    MulticastPim pim(4);
    EXPECT_THROW(pim.match({req(5, {0})}), UsageError);
    EXPECT_THROW(pim.match({req(0, {})}), UsageError);
    EXPECT_THROW(pim.match({req(0, {9})}), UsageError);
    EXPECT_THROW(pim.match({req(0, {1, 1})}), UsageError);
    EXPECT_THROW(pim.match({req(0, {1}), req(0, {2})}), UsageError);
}

TEST(MulticastPimTest, InvalidConfigRejected)
{
    MulticastPimConfig cfg;
    cfg.iterations = 0;
    EXPECT_THROW(MulticastPim(4, cfg), UsageError);
    EXPECT_THROW(MulticastPim(0), UsageError);
}

}  // namespace
}  // namespace an2
