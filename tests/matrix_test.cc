// Tests for the dense matrix (an2/base/matrix.h).
#include "an2/base/matrix.h"

#include <gtest/gtest.h>

namespace an2 {
namespace {

TEST(MatrixTest, DefaultEmpty)
{
    Matrix<int> m;
    EXPECT_EQ(m.rows(), 0);
    EXPECT_EQ(m.cols(), 0);
}

TEST(MatrixTest, FillConstructorAndAccess)
{
    Matrix<int> m(3, 4, 7);
    EXPECT_EQ(m.rows(), 3);
    EXPECT_EQ(m.cols(), 4);
    for (int r = 0; r < 3; ++r)
        for (int c = 0; c < 4; ++c)
            EXPECT_EQ(m.at(r, c), 7);
}

TEST(MatrixTest, WriteAndReadBack)
{
    Matrix<double> m(2, 2);
    m(0, 1) = 3.5;
    m(1, 0) = -1.0;
    EXPECT_EQ(m.at(0, 1), 3.5);
    EXPECT_EQ(m.at(1, 0), -1.0);
    EXPECT_EQ(m.at(0, 0), 0.0);
}

TEST(MatrixTest, RowColAndTotalSums)
{
    Matrix<int> m(2, 3);
    // 1 2 3
    // 4 5 6
    int v = 1;
    for (int r = 0; r < 2; ++r)
        for (int c = 0; c < 3; ++c)
            m(r, c) = v++;
    EXPECT_EQ(m.rowSum(0), 6);
    EXPECT_EQ(m.rowSum(1), 15);
    EXPECT_EQ(m.colSum(0), 5);
    EXPECT_EQ(m.colSum(2), 9);
    EXPECT_EQ(m.total(), 21);
}

TEST(MatrixTest, FillOverwrites)
{
    Matrix<int> m(2, 2, 1);
    m.fill(9);
    EXPECT_EQ(m.total(), 36);
}

TEST(MatrixTest, EqualityComparesShapeAndData)
{
    Matrix<int> a(2, 2, 1);
    Matrix<int> b(2, 2, 1);
    EXPECT_TRUE(a == b);
    b(1, 1) = 2;
    EXPECT_FALSE(a == b);
    Matrix<int> c(1, 4, 1);
    EXPECT_FALSE(a == c);
}

TEST(MatrixTest, OutOfBoundsThrows)
{
    Matrix<int> m(2, 2);
    EXPECT_THROW(m.at(2, 0), InternalError);
    EXPECT_THROW(m.at(0, 2), InternalError);
    EXPECT_THROW(m.at(-1, 0), InternalError);
}

TEST(MatrixTest, NegativeDimensionsRejected)
{
    EXPECT_THROW(Matrix<int>(-1, 2), UsageError);
}

}  // namespace
}  // namespace an2
