// Tests for the metrics collector (an2/sim/metrics.h).
#include "an2/sim/metrics.h"

#include <gtest/gtest.h>

namespace an2 {
namespace {

Cell
cellAt(FlowId flow, PortId in, PortId out, SlotTime inject)
{
    Cell c;
    c.flow = flow;
    c.input = in;
    c.output = out;
    c.inject_slot = inject;
    return c;
}

TEST(MetricsTest, WarmupCellsExcluded)
{
    MetricsCollector m(100, 4);
    Cell early = cellAt(0, 0, 1, 50);
    Cell late = cellAt(0, 0, 1, 150);
    m.noteInjected(early);
    m.noteInjected(late);
    m.noteDelivered(early, 60);
    m.noteDelivered(late, 155);
    EXPECT_EQ(m.injected(), 1);
    EXPECT_EQ(m.delivered(), 1);
    EXPECT_DOUBLE_EQ(m.meanDelay(), 5.0);
}

TEST(MetricsTest, DelayStatsAndQuantiles)
{
    MetricsCollector m(0, 4);
    for (int d = 0; d < 100; ++d) {
        Cell c = cellAt(0, 0, 0, 0);
        m.noteInjected(c);
        m.noteDelivered(c, d);
    }
    EXPECT_NEAR(m.meanDelay(), 49.5, 1e-9);
    EXPECT_NEAR(m.delayQuantile(0.99), 99.0, 1.5);
    EXPECT_EQ(m.delayStats().count(), 100);
}

TEST(MetricsTest, PerConnectionAndPerFlowCounts)
{
    MetricsCollector m(0, 4);
    Cell a = cellAt(7, 1, 2, 0);
    Cell b = cellAt(8, 1, 3, 0);
    m.noteDelivered(a, 1);
    m.noteDelivered(a, 2);
    m.noteDelivered(b, 3);
    EXPECT_EQ(m.deliveredPerConnection().at(1, 2), 2);
    EXPECT_EQ(m.deliveredPerConnection().at(1, 3), 1);
    EXPECT_EQ(m.deliveredPerConnection().at(0, 0), 0);
    EXPECT_EQ(m.deliveredPerConnection().total(), 3);
    EXPECT_EQ(m.deliveredPerFlow().at(7), 2);
    EXPECT_EQ(m.deliveredPerFlow().at(8), 1);
}

TEST(MetricsTest, OccupancyPeakSticky)
{
    MetricsCollector m(0, 4);
    m.noteOccupancy(3);
    m.noteOccupancy(10);
    m.noteOccupancy(4);
    EXPECT_EQ(m.maxOccupancy(), 10);
}

TEST(MetricsTest, NegativeDelayPanics)
{
    MetricsCollector m(0, 4);
    Cell c = cellAt(0, 0, 0, 10);
    EXPECT_THROW(m.noteDelivered(c, 5), InternalError);
}

TEST(MetricsTest, NegativeWarmupRejected)
{
    EXPECT_THROW(MetricsCollector(-1, 4), UsageError);
}

TEST(MetricsTest, NonPositivePortCountRejected)
{
    EXPECT_THROW(MetricsCollector(0, 0), UsageError);
    EXPECT_THROW(MetricsCollector(0, -3), UsageError);
}

}  // namespace
}  // namespace an2
